#ifndef REGCUBE_CORE_SHARDED_ENGINE_H_
#define REGCUBE_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/common/thread_pool.h"
#include "regcube/core/incremental_cube.h"
#include "regcube/core/ingest_queue.h"
#include "regcube/core/memory_governor.h"
#include "regcube/core/shard_writer.h"
#include "regcube/core/snapshot_reads.h"
#include "regcube/core/stream_engine.h"
#include "regcube/io/frame_store.h"

namespace regcube {

class MemoryTracker;

/// The memory-governed storage tier's configuration: a global byte budget
/// shared by every shard (0 = unbounded) and the directory cold frames
/// spill to (empty = no cold tier; with a budget but no spill dir the
/// ladder stops at the cache-dropping rungs).
///
/// `compact_garbage_ratio`/`compact_min_bytes` tune online compaction: a
/// shard's spill segment is rewritten when its garbage reaches both
/// `compact_garbage_ratio` x its live bytes and `compact_min_bytes` — the
/// defaults bound steady-state disk at roughly 2x live data while keeping
/// tiny segments exempt (rewriting 4 KiB to reclaim 4 KiB is churn, not
/// compaction).
struct MemoryBudgetConfig {
  std::int64_t budget_bytes = 0;
  std::string spill_dir;
  double compact_garbage_ratio = 1.0;
  std::int64_t compact_min_bytes = 32 * 1024;
};

/// Thread-safe scale-out layer over StreamCubeEngine: m-layer cells are
/// hash-partitioned across N single-threaded shards, each guarded by its
/// own mutex. Writers touch exactly one shard per tuple, so ingest from
/// many threads proceeds in parallel; SealThrough is a barrier that locks
/// every shard and drives all of them to one global clock.
///
/// Reads are snapshot-based, O(changed cells), and — on the steady-state
/// path — mutex-free: each shard keeps an atomically published generation
/// (ShardPublication: an immutable sorted run of frozen frames plus the
/// revision it reflects). In async mode the shard-owner thread absorbs a
/// drained batch into the engine, refreshes the run (only dirty cells are
/// re-frozen), and swaps the new generation in with a single
/// acquire/release pointer publish; GatherAlignedCells / TakeSnapshot /
/// point-query gathers load the last published generation and never touch
/// the shard mutex unless the generation is stale (then a slow path takes
/// the lock and republishes — which is also how sync-mode writes become
/// visible). The mutex shrinks to structural edits: absorb/ingest, seal
/// and epoch roll (SealThrough / ComputeCubeAllLocks force-align), and
/// compaction re-pointing. A whole-engine cache keyed by the global
/// revision keeps repeat reads at one revision down to a refcount copy.
/// Alignment to the global clock happens on copies outside every lock; a
/// block is re-materialized only when the clock crossed a tilt-unit
/// boundary since it froze (otherwise advancing is observationally a
/// no-op and the block is shared as-is). The pre-redesign
/// hold-every-lock read survives as ComputeCubeAllLocks, kept as the
/// baseline oracle for benches and bit-identity tests, and
/// GatherAlignedCells(GatherMode::kFull) retains the copy-everything
/// gather for the same purpose.
///
/// Point queries copy O(matching members): GatherCellsMatching probes the
/// member index under the shard lock (a hash probe, no frame copies),
/// then binary-searches the members in the published run outside it —
/// QueryCell/QueryCellSeries never freeze or copy the whole engine to
/// answer about a handful of members.
///
/// Read results are *bit-identical for every shard count*: frozen per-cell
/// rows are sorted into a canonical key order before any aggregation, so
/// the floating-point reduction order never depends on how cells happened
/// to be partitioned.
///
/// The key mapper (primitive key -> m-layer key) is applied here, before
/// shard hashing, so every observation of one m-layer cell lands on the
/// same shard; the inner engines run mapper-free.
class ShardedStreamEngine {
 public:
  using Options = StreamCubeEngine::Options;
  using Algorithm = StreamCubeEngine::Algorithm;
  using DeckSeries = StreamCubeEngine::DeckSeries;
  using TrendChange = StreamCubeEngine::TrendChange;

  /// `num_shards` must be >= 1 (checked). A non-null `pool` parallelizes
  /// shard gathering and per-cuboid cubing; null keeps reads serial.
  /// `ingest` selects the write path: the default kSync absorbs on the
  /// caller's thread exactly as before; kAsync puts a bounded IngestQueue
  /// in front of every shard and starts one ShardWriter owner thread per
  /// shard to drain it.
  ShardedStreamEngine(std::shared_ptr<const CubeSchema> schema,
                      Options options, int num_shards,
                      std::shared_ptr<ThreadPool> pool = nullptr,
                      IngestConfig ingest = {});

  // ---- write side (safe from many threads concurrently) ----------------

  /// Absorbs one observation (locks only the owning shard). In async mode
  /// this enqueues instead and returns the ticket's status — OK means
  /// *accepted*, not yet absorbed; Flush() is the visibility barrier.
  Status Ingest(const StreamTuple& tuple);

  /// Partitions the batch by shard and feeds each shard under its lock.
  /// Per-cell tick order within the batch is preserved. The report carries
  /// the partial-failure contract: how many tuples were absorbed before
  /// the first error (shards are fed in index order, so the absorbed set
  /// is every earlier shard's full partition plus the failing shard's
  /// prefix). In async mode this routes through IngestAsync and
  /// `absorbed` counts tuples *accepted into the queues*.
  IngestReport IngestBatch(const std::vector<StreamTuple>& tuples);

  /// The async door: partitions the batch by shard (per-shard, per-cell
  /// order preserved) and enqueues each partition on its shard's queue,
  /// returning as soon as every tuple is accepted, evicted-for, or refused
  /// per the backpressure policy. Absorption happens on the shard-owner
  /// threads; the data becomes visible to reads as it is drained, and
  /// Flush() waits for everything accepted so far. Callable from many
  /// threads concurrently. Pre: async mode (RC_CHECK).
  IngestTicket IngestAsync(const std::vector<StreamTuple>& tuples);

  /// Drain barrier: blocks until every tuple accepted by any queue before
  /// this call has been absorbed into its shard (or deliberately dropped
  /// under kDropOldest), then reports the first shard-engine absorb error
  /// since the last Flush (clearing it). Tuples enqueued concurrently
  /// *after* Flush begins are not waited for. When Flush returns, all
  /// waited-for absorption happens-before the return — a subsequent read
  /// on this thread sees it. No-op OK in sync mode.
  Status Flush();

  /// Queue observability (mode/policy/capacity, per-shard depth and
  /// high-water, enqueue/absorb/drop/reject counters, p99 enqueue
  /// latency). Totals are merged across shards. Empty per_shard in sync
  /// mode — there are no queues.
  regcube::IngestStats IngestStats() const;

  /// Bytes retained by the per-shard ingest queues' preallocated rings —
  /// the "ingest.queue" figure, readable without a tracker attached
  /// (0 in sync mode).
  std::int64_t IngestQueueBytes() const;

  const IngestConfig& ingest_config() const { return ingest_; }

  /// Barrier: locks every shard, seals all of them through `t` and aligns
  /// them to one global clock, so subsequent reads see one consistent
  /// slot structure. The revision moves only if some frame actually sealed
  /// a slot — an idempotent re-seal keeps every revision-memoized snapshot
  /// valid. In async mode this Flushes first — tuples with ticks <= `t`
  /// may still be queued, and sealing past them would refuse them as late.
  Status SealThrough(TimeTick t);

  // ---- read side (gather briefly under per-shard locks, then lock-free) -

  /// The gather-under-lock phase shared by every full read: frozen views
  /// of all cells, aligned to one clock, in canonical key order. Each
  /// shard's lock is held only while its cells are exported; alignment and
  /// merging happen outside. The run is behind a shared_ptr so cache hits
  /// and snapshot installs are refcount copies, never cell-by-cell copies.
  /// The result is immutable and self-contained — the api layer wraps it
  /// as a CubeSnapshot.
  struct GatheredCells {
    std::shared_ptr<const SnapshotCells> cells;  // canonical order, aligned
    TimeTick clock = 0;          // tick the cells are aligned to
    std::uint64_t revision = 0;  // engine revision when gathering began
    GatherStats stats;           // what this gather paid
    /// Non-OK when a shard's publish failed (a spilled cell could not be
    /// faulted in). `cells` is then empty-but-valid, nothing was cached,
    /// and no shard lost state — the failing shard kept its dirty list
    /// and its previous generation, and a shard that did republish
    /// retains its run — so a retry gathers exactly the same data.
    Status status;
  };

  /// kDelta shares frozen blocks for unchanged cells and serves clean
  /// shards (or a clean engine) from the caches — O(changed cells).
  /// kFull deep-copies every frame and bypasses every cache — the
  /// O(all cells) pre-redesign baseline, bit-identical to kDelta, kept
  /// for benches and equivalence tests.
  enum class GatherMode { kDelta, kFull };
  GatheredCells GatherAlignedCells(GatherMode mode = GatherMode::kDelta);

  /// The member-only gather behind point queries: frozen views of just the
  /// m-layer cells that roll up into `key` of `cuboid`, aligned to the
  /// global clock, in canonical key order. With PointLookup::kIndexed (the
  /// default) each shard hash-probes its ingest-maintained per-cuboid
  /// roll-up index under its lock — O(matching members), no cell scan;
  /// kScan retains the project-every-key path as the bit-identity oracle.
  /// `total_cells` distinguishes "engine empty" from "no member matches"
  /// for the legacy error contract.
  struct MemberGather {
    SnapshotCells cells;  // the matching members only
    TimeTick clock = 0;
    std::int64_t total_cells = 0;  // all cells across shards at gather time
    Status status;  // non-OK when a member's fault-in failed (Unavailable)
  };
  MemberGather GatherCellsMatching(CuboidId cuboid, const CellKey& key,
                                   PointLookup lookup = PointLookup::kIndexed);

  /// The m-layer keys that roll up into each of `keys` in `cuboid`,
  /// merged across shards into canonical key order — the member feed the
  /// cube memo's seeded node indexes consume. Batched so each shard's
  /// lock is taken once per call, not once per key.
  std::vector<std::vector<CellKey>> MemberKeysForBatch(
      CuboidId cuboid, const std::vector<CellKey>& keys);

  /// Single-key convenience over MemberKeysForBatch.
  std::vector<CellKey> MemberKeysFor(CuboidId cuboid, const CellKey& key);

  /// Merged m-layer window over the most recent `k` sealed slots of tilt
  /// `level`, in canonical key order.
  Result<std::vector<MLayerTuple>> SnapshotWindow(int level, int k);

  /// The partially materialized cube over that window with the configured
  /// algorithm, by value (a deep copy when served from the maintained
  /// memo) — for callers that persist or hand the cube elsewhere.
  /// ComputeCubeShared is the cheap door. Gathers first, then cubes
  /// lock-free — concurrent ingest keeps flowing.
  Result<RegressionCube> ComputeCube(int level, int k);

  /// The maintained cube (m/o H-cubing only): cached keyed by engine
  /// revision, and on a later query only the delta gather's changed cells
  /// are folded into it — each changed leaf updated in the memoized
  /// H-tree, every cuboid cell it rolls up into re-aggregated in kernel
  /// order, the exception predicate re-evaluated only for those touched
  /// cells. Bit-identical to from-scratch H-cubing over the same window
  /// (the patch replays the kernel's exact operand order; structural
  /// changes and window-interval rolls rebuild via the from-scratch
  /// kernel itself). Popular-path engines always compute from scratch
  /// here. The returned cube is immutable and safe to hold across writes.
  Result<std::shared_ptr<const RegressionCube>> ComputeCubeShared(int level,
                                                                  int k);

  /// Maintenance counters of the incremental cube memo (zeroes for
  /// popular-path engines, which have no memo).
  IncrementalCubeCache::Stats cube_memo_stats() const;

  /// Analytic bytes retained by the cube memo — the "cube.memo" figure,
  /// readable without a tracker attached (0 for popular-path engines).
  std::int64_t CubeMemoBytes() const;

  /// The retired pre-redesign read: holds every shard lock for the whole
  /// cubing computation. Identical results to ComputeCube; kept only as
  /// the baseline for bench_snapshot_reads and the bit-identity tests.
  Result<RegressionCube> ComputeCubeAllLocks(int level, int k);

  /// Observation deck merged across shards (§4.2 semantics of the single
  /// engine).
  Result<DeckSeries> ObservationDeck(int level);

  /// O-layer cells whose slope moved by >= `threshold` between the last
  /// two sealed slots of `level`, strongest change first.
  Result<std::vector<TrendChange>> DetectTrendChanges(int level,
                                                      double threshold);

  /// On-the-fly regression of one cell of any lattice cuboid, aggregated
  /// from member cells across all shards via the member-only gather —
  /// copies O(matching members), never takes a full snapshot.
  Result<Isb> QueryCell(CuboidId cuboid, const CellKey& key, int level,
                        int k);

  /// The cell's whole sealed slot series at `level` (member-only gather).
  Result<std::vector<Isb>> QueryCellSeries(CuboidId cuboid,
                                           const CellKey& key, int level);

  // ---- bookkeeping -----------------------------------------------------

  /// Global engine clock: max ingested tick / sealed boundary seen.
  TimeTick now() const { return clock_.load(std::memory_order_acquire); }

  /// Distinct m-layer cells across all shards.
  std::int64_t num_cells() const;

  /// Total bytes retained by every shard's tilt frames.
  std::int64_t MemoryBytes() const;

  /// Bytes retained by the per-cell frozen snapshot blocks across shards.
  std::int64_t FrozenBytes() const;

  /// Bytes retained by the per-shard member indexes (the "index.members"
  /// figure), readable without a tracker attached.
  std::int64_t MemberIndexBytes() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Monotonic counter bumped by every write that changed observable
  /// state; lets callers (e.g. the facade's snapshot cache) detect
  /// staleness cheaply. Writes that change nothing — an idempotent
  /// re-seal, alignment that crossed no tilt-unit boundary — leave it
  /// alone, so memoized snapshots stay shared.
  std::uint64_t revision() const {
    return revision_.load(std::memory_order_acquire);
  }

  /// Installs analytic memory accounting for the frozen-block and gather
  /// caches ("snapshot.frozen_frames" / "snapshot.gather_cache"). Not
  /// owned; must outlive the engine. Install before concurrent use.
  void set_memory_tracker(MemoryTracker* tracker);

  // ---- the memory-governed storage tier ---------------------------------

  /// Builds the cold tier and/or governor per `config`: opens the frame
  /// store (when a spill dir is configured), attaches it to every shard,
  /// and stands up the MemoryGovernor with the core eviction ladder —
  /// cube memo (priority 10), gather caches + frozen blocks (21), cold
  /// spill (30); the api layer adds its snapshot cache at 19. Call once,
  /// after set_memory_tracker and before concurrent use. Enforcement then
  /// runs after every sync ingest and on the owner threads' post-batch
  /// hook in async mode.
  Status ConfigureStorage(const MemoryBudgetConfig& config);

  /// The governor, or null when no budget is configured — the api layer
  /// registers its snapshot-cache rung through this.
  MemoryGovernor* governor() { return governor_.get(); }

  /// The cold tier, or null when neither a spill dir was configured nor a
  /// checkpoint restored.
  const FrameStore* frame_store() const { return frame_store_.get(); }

  /// Runs the eviction ladder if usage exceeds the budget (no-op without a
  /// governor). Public so tests can force an enforcement point. Every
  /// ~256th call also probes the spill segments for compaction-worthy
  /// garbage (see MaybeCompactSegments).
  void MaybeEnforceBudget();

  /// Compacts any shard spill segment whose garbage crossed the configured
  /// threshold (MemoryBudgetConfig::compact_garbage_ratio/min_bytes): the
  /// store rewrites the segment's live blocks into a fresh file while this
  /// engine holds that shard's lock, then the shard's BlockRefs are
  /// re-pointed at the new file before the lock drops — readers can never
  /// observe a ref into a retired segment. A failed compaction is counted
  /// (SpillStats::compaction_failures) and leaves the old segment intact.
  /// Public so tests and the CLI can force a pass; normally sampled from
  /// MaybeEnforceBudget.
  void MaybeCompactSegments();

  /// Installs the fault-injection seam on the cold tier (now, if the store
  /// already exists, and on any store ConfigureStorage/RestoreFrom opens
  /// later). Not owned; must outlive the engine. Tests only.
  void set_fault_injector(FaultInjector* injector);

  /// Eviction/spill observability: governor counters, frame-store
  /// counters, and the current cold-cell population, merged.
  regcube::SpillStats SpillStats() const;

  /// Persists the whole engine under `dir`: flushes queued ingest, then —
  /// holding every shard lock — encodes each shard's cells in parallel on
  /// the pool into one "frames-<i>.rcs" file per shard (spilled cells are
  /// copied raw, no fault-in), and writes the manifest last as the commit
  /// point. The directory can be re-opened with RestoreFrom (or the api
  /// EngineBuilder::OpenFrom) for a warm restart.
  Status CheckpointTo(const std::string& dir);

  /// Warm restart: validates the manifest against this engine's schema and
  /// tilt policy, maps every shard file read-only, and installs each
  /// checkpointed cell as lazily-spilled state — no frame is decoded until
  /// first touched, so the first query after restart is served by
  /// fault-ins straight from the mapped files. Keys are re-routed by the
  /// *current* shard hash, so the shard count may differ from the writer's.
  /// Pre: the engine is freshly built and empty; call before any ingest.
  Status RestoreFrom(const std::string& dir);

  const CubeSchema& schema() const { return *schema_; }
  const CuboidLattice& lattice() const { return lattice_; }

  /// The shard configuration with the key mapper stripped (it is applied
  /// before hashing). The api layer hands this to CubeSnapshot so snapshot
  /// cubing uses the same algorithm/policy/tilt structure.
  const Options& options() const { return options_; }

 private:
  /// One atomically published generation of a shard's cells: an immutable
  /// sorted run of frozen frames plus the shard clock and engine revision
  /// it reflects. The owner (or a slow-path reader under the shard mutex)
  /// builds a successor and swaps it in with a single release store;
  /// readers load it with acquire and never touch the mutex on the fast
  /// path. Retired generations stay alive as long as some reader holds
  /// them — their frames are freed by the last shared_ptr drop.
  struct ShardPublication {
    StreamCubeEngine::FrozenSlice cells;  // canonical order, this shard
    TimeTick now = 0;            // shard clock when published
    std::uint64_t revision = 0;  // shard engine revision the run reflects
  };

  struct Shard {
    mutable std::mutex mu;
    // The engine holds the per-shard delta state: per-cell frozen blocks,
    // the dirty list, and the retained published run its publications
    // share.
    StreamCubeEngine engine;
    // Mirror of engine.revision(), stored with release inside the mutex
    // at every mutation site. A reader whose loaded publication carries
    // `revision == version` knows no write completed since the publish —
    // the lock-free freshness check behind the mutex-free gather path.
    std::atomic<std::uint64_t> version{0};
    // The last published generation. Null until the first publish.
    std::atomic<std::shared_ptr<const ShardPublication>> published{};

    explicit Shard(std::shared_ptr<const CubeSchema> schema, Options options)
        : engine(std::move(schema), std::move(options)) {}
  };

  int ShardIndex(const CellKey& mapped_key) const;

  /// Raises the global clock to at least `t` (lock-free fetch-max).
  void BumpClock(TimeTick t);

  /// Locks every shard in index order (the one lock order, so concurrent
  /// barriers never deadlock). Only the write barrier and the AllLocks
  /// baseline still use this.
  std::vector<std::unique_lock<std::mutex>> LockAll() const;

  /// Pre: all shard locks held. Drives every shard's clock (and frame
  /// alignment) to the global clock, so per-shard slot structures agree.
  Status AlignLocked();

  /// Pre: all shard locks held. Sum of the shard engines' revisions —
  /// compared across a barrier to decide whether the global revision must
  /// move.
  std::uint64_t SumShardRevisionsLocked() const;

  /// Owner-thread absorb step for shard `i`: one shard-lock acquisition
  /// per drained batch — absorb into the engine, refresh the published
  /// run, swap the new generation in — then the same clock/revision
  /// bookkeeping the sync path does per call. The publish happens before
  /// MarkAbsorbed resolves the batch, so a reader that returned from
  /// Flush() gathers the flushed data without touching the shard mutex.
  ShardWriter::AbsorbResult AbsorbDrained(
      size_t i, const std::vector<StreamTuple>& batch);

  /// Pre: shard.mu held. Refreshes the engine's published run and stores
  /// a new generation (and the version mirror). On a fault-in failure the
  /// old generation stays published (stale → readers take the slow path
  /// and retry the refresh) and the error is returned.
  Status PublishLocked(Shard& shard, GatherStats* stats);

  /// The shard's current publication, fresh as of this call: lock-free
  /// when the published generation's revision matches the version mirror,
  /// otherwise a slow path takes the shard mutex and republishes. Returns
  /// null (with `*status` set) only when a republish failed.
  std::shared_ptr<const ShardPublication> PublicationFor(size_t i,
                                                         GatherStats* stats,
                                                         Status* status);

  /// Pre: all shard locks held. Re-mirrors every shard's version after a
  /// barrier mutated the engines (seal, force-align, restore).
  void MirrorVersionsLocked();

  /// Current usage the governor compares against the budget: the
  /// tracker's global total when one is attached (it covers frames,
  /// frozen blocks, caches, memo, indexes, queues), else the sum of the
  /// O(1) per-shard counters.
  std::int64_t UsageBytes() const;

  // The eviction ladder's rungs (see ConfigureStorage for the order).
  std::int64_t DropCubeMemoRung();
  std::int64_t DropGatherCachesRung();
  std::int64_t SpillColdFramesRung(std::int64_t excess);
  std::int64_t ExportDirtyRung(std::int64_t excess);

  /// Sync-ingest admission: OK, or a typed ResourceExhausted when the
  /// governor has exhausted its ladder and usage still exceeds the budget
  /// (re-enforcing once first, so a transient overshoot clears itself).
  Status CheckIngestAdmission();

  std::shared_ptr<const CubeSchema> schema_;
  CuboidLattice lattice_;
  Options options_;  // shard options; key_mapper lives in mapper_ instead
  IngestConfig ingest_;
  std::function<CellKey(const CellKey&)> mapper_;
  std::shared_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<TimeTick> clock_;
  std::atomic<std::uint64_t> revision_{0};
  MemoryTracker* tracker_ = nullptr;

  /// The copy-everything gather (GatherMode::kFull): per-shard full
  /// exports, sorted, merged, aligned per cell. Bypasses every cache.
  GatheredCells GatherFull();

  // Whole-engine gather cache: every full read at one revision shares one
  // gather (SnapshotWindow, ObservationDeck, DetectTrendChanges, the
  // facade's TakeSnapshot all route here). A miss rebuilds the merged run
  // from the per-shard publications (mutex-free for every shard whose
  // generation is fresh). gather_work_mu_ serializes the rebuilds — pure
  // thundering-herd protection now that publications retain their runs;
  // correctness no longer depends on it.
  std::mutex gather_mu_;
  std::mutex gather_work_mu_;
  bool gather_valid_ = false;
  GatheredCells gather_cache_;

  // The maintained cube (see ComputeCubeShared). Null for popular-path
  // engines — their cubes are not patchable, so they stay from-scratch.
  std::unique_ptr<IncrementalCubeCache> cube_memo_;

  // The memory-governed storage tier (both null until ConfigureStorage /
  // RestoreFrom): the shared cold tier and the budget enforcer. The store
  // must outlive the shards' use of it; it is declared here, before
  // writers_, so owner threads join before it is destroyed.
  MemoryBudgetConfig budget_config_;
  std::unique_ptr<FrameStore> frame_store_;
  std::unique_ptr<MemoryGovernor> governor_;
  FaultInjector* fault_injector_ = nullptr;
  std::atomic<std::int64_t> enforce_calls_{0};   // compaction probe sampler
  std::atomic<std::int64_t> budget_rejects_{0};  // typed ingest rejects

  // The async ingest subsystem (empty in sync mode). writers_ is the LAST
  // member on purpose: destruction runs in reverse declaration order, so
  // each owner thread closes its queue, drains what was accepted, and
  // joins before the queues — and the shards its absorb callback
  // touches — are torn down.
  std::vector<std::unique_ptr<IngestQueue>> queues_;
  std::vector<std::unique_ptr<ShardWriter>> writers_;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_SHARDED_ENGINE_H_
