#ifndef REGCUBE_CORE_SHARDED_ENGINE_H_
#define REGCUBE_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/core/stream_engine.h"

namespace regcube {

/// Thread-safe scale-out layer over StreamCubeEngine: m-layer cells are
/// hash-partitioned across N single-threaded shards, each guarded by its
/// own mutex. Writers touch exactly one shard per tuple, so ingest from
/// many threads proceeds in parallel; SealThrough is a barrier that locks
/// every shard and drives all of them to one global clock.
///
/// Read operations merge per-shard state into results that are
/// *bit-identical for every shard count*: merged per-cell rows are sorted
/// into a canonical key order before any aggregation, so the floating-point
/// reduction order never depends on how cells happened to be partitioned.
///
/// The key mapper (primitive key -> m-layer key) is applied here, before
/// shard hashing, so every observation of one m-layer cell lands on the
/// same shard; the inner engines run mapper-free.
class ShardedStreamEngine {
 public:
  using Options = StreamCubeEngine::Options;
  using Algorithm = StreamCubeEngine::Algorithm;
  using DeckSeries = StreamCubeEngine::DeckSeries;
  using TrendChange = StreamCubeEngine::TrendChange;

  /// `num_shards` must be >= 1 (checked).
  ShardedStreamEngine(std::shared_ptr<const CubeSchema> schema,
                      Options options, int num_shards);

  // ---- write side (safe from many threads concurrently) ----------------

  /// Absorbs one observation (locks only the owning shard).
  Status Ingest(const StreamTuple& tuple);

  /// Partitions the batch by shard and feeds each shard under its lock.
  /// Per-cell tick order within the batch is preserved; on error the
  /// already-fed shards keep their prefix (same spirit as the
  /// single-engine "stops at the first error" contract).
  Status IngestBatch(const std::vector<StreamTuple>& tuples);

  /// Barrier: locks every shard, seals all of them through `t` and aligns
  /// them to one global clock, so subsequent reads see one consistent
  /// slot structure.
  Status SealThrough(TimeTick t);

  // ---- read side (each call locks all shards for its duration) ---------

  /// Merged m-layer window over the most recent `k` sealed slots of tilt
  /// `level`, in canonical key order.
  Result<std::vector<MLayerTuple>> SnapshotWindow(int level, int k);

  /// Recomputes the partially materialized cube over that window with the
  /// configured algorithm, from the merged (canonically ordered) window.
  Result<RegressionCube> ComputeCube(int level, int k);

  /// Observation deck merged across shards (§4.2 semantics of the single
  /// engine).
  Result<DeckSeries> ObservationDeck(int level);

  /// O-layer cells whose slope moved by >= `threshold` between the last
  /// two sealed slots of `level`, strongest change first.
  Result<std::vector<TrendChange>> DetectTrendChanges(int level,
                                                      double threshold);

  /// On-the-fly regression of one cell of any lattice cuboid, aggregated
  /// from member cells across all shards.
  Result<Isb> QueryCell(CuboidId cuboid, const CellKey& key, int level,
                        int k);

  /// The cell's whole sealed slot series at `level`.
  Result<std::vector<Isb>> QueryCellSeries(CuboidId cuboid,
                                           const CellKey& key, int level);

  // ---- bookkeeping -----------------------------------------------------

  /// Global engine clock: max ingested tick / sealed boundary seen.
  TimeTick now() const { return clock_.load(std::memory_order_acquire); }

  /// Distinct m-layer cells across all shards.
  std::int64_t num_cells() const;

  /// Total bytes retained by every shard's tilt frames.
  std::int64_t MemoryBytes() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Monotonic counter bumped by every successful write; lets callers
  /// (e.g. the facade's cube cache) detect staleness cheaply.
  std::uint64_t revision() const {
    return revision_.load(std::memory_order_acquire);
  }

  const CubeSchema& schema() const { return *schema_; }
  const CuboidLattice& lattice() const { return lattice_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    StreamCubeEngine engine;

    explicit Shard(std::shared_ptr<const CubeSchema> schema, Options options)
        : engine(std::move(schema), std::move(options)) {}
  };

  int ShardIndex(const CellKey& mapped_key) const;

  /// Raises the global clock to at least `t` (lock-free fetch-max).
  void BumpClock(TimeTick t);

  /// Locks every shard in index order (the one lock order, so concurrent
  /// barriers never deadlock).
  std::vector<std::unique_lock<std::mutex>> LockAll() const;

  /// Pre: all shard locks held. Drives every shard's clock (and frame
  /// alignment) to the global clock, so per-shard slot structures agree.
  Status AlignLocked();

  /// Pre: all shard locks held, shards aligned. Per-cell slot-series rows
  /// merged across shards in canonical key order.
  Result<std::vector<StreamCubeEngine::MLayerSeries>> MergedSeriesLocked(
      int level);

  /// Pre: all shard locks held, shards aligned. The m-layer cells (with
  /// their owning shards) that roll up into `key` of `cuboid`, in
  /// canonical key order — the point-query path touches only these.
  /// FailedPrecondition with no data, NotFound with no members.
  Result<std::vector<std::pair<CellKey, Shard*>>> MemberCellsLocked(
      CuboidId cuboid, const CellKey& key);

  std::shared_ptr<const CubeSchema> schema_;
  CuboidLattice lattice_;
  Options options_;  // shard options; key_mapper lives in mapper_ instead
  std::function<CellKey(const CellKey&)> mapper_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<TimeTick> clock_;
  std::atomic<std::uint64_t> revision_{0};
};

}  // namespace regcube

#endif  // REGCUBE_CORE_SHARDED_ENGINE_H_
