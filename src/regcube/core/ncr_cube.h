#ifndef REGCUBE_CORE_NCR_CUBE_H_
#define REGCUBE_CORE_NCR_CUBE_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/cube/cuboid.h"
#include "regcube/cube/schema.h"
#include "regcube/regression/ncr.h"

namespace regcube {

/// One m-layer cell carrying a multiple-regression measure (§6.2): the
/// NCR sufficient statistics of the cell's observations under a shared
/// basis.
struct NcrTuple {
  CellKey key;
  NcrMeasure measure;
};

using NcrCellMap = std::unordered_map<CellKey, NcrMeasure, CellKeyHash>;

/// How a roll-up combines descendant NCR measures. Both are lossless for
/// the model parameters; they encode different cube semantics:
///  * kSumResponses — the aggregate cell's response is the SUM of the
///    descendants' responses at identical design points (the Theorem 3.2
///    semantics: total power usage across users). Requires equal designs,
///    validated at merge; RSS becomes unavailable.
///  * kPoolObservations — the aggregate cell's observation set is the UNION
///    of the descendants' observations (regional sensor pooling, the §6.2
///    multi-variable scenario). RSS stays exact.
enum class NcrRollup {
  kSumResponses,
  kPoolObservations,
};

const char* NcrRollupName(NcrRollup rollup);

struct NcrCubeOptions {
  NcrRollup rollup = NcrRollup::kPoolObservations;

  /// Exception predicate on the *solved* model: a cell is exceptional iff
  /// |theta[watch_coefficient]| >= threshold. With the linear-time basis
  /// and watch_coefficient = 1 this is exactly the paper's slope test.
  std::size_t watch_coefficient = 1;
  double threshold = 0.0;

  /// Cells whose normal equations cannot be solved (underdetermined or
  /// collinear) are never exceptional; set this to fail the computation
  /// instead.
  bool fail_on_singular_cells = false;
};

/// The §6.2 generalization of the regression cube: the two critical layers
/// fully materialized with NCR measures, exception cells in between.
/// Computation aggregates m-layer sufficient statistics by direct
/// projection (the H-tree sharing of the ISB pipeline applies identically
/// but is not reimplemented for the heavier measure type).
class NcrCube {
 public:
  explicit NcrCube(std::shared_ptr<const CubeSchema> schema);

  NcrCube(NcrCube&&) noexcept = default;
  NcrCube& operator=(NcrCube&&) noexcept = default;

  const CubeSchema& schema() const { return *schema_; }
  const CuboidLattice& lattice() const { return lattice_; }

  const NcrCellMap& m_layer() const { return m_layer_; }
  const NcrCellMap& o_layer() const { return o_layer_; }

  /// Exception cells per intermediate cuboid (cuboid-id ascending).
  const std::map<CuboidId, NcrCellMap>& exceptions() const {
    return exceptions_;
  }

  std::int64_t total_exception_cells() const;

  NcrCellMap& mutable_m_layer() { return m_layer_; }
  NcrCellMap& mutable_o_layer() { return o_layer_; }
  std::map<CuboidId, NcrCellMap>& mutable_exceptions() { return exceptions_; }

 private:
  std::shared_ptr<const CubeSchema> schema_;
  CuboidLattice lattice_;
  NcrCellMap m_layer_;
  NcrCellMap o_layer_;
  std::map<CuboidId, NcrCellMap> exceptions_;
};

/// Aggregates the m-layer tuples into every cell of `cuboid` under the
/// chosen roll-up. Feature arities must agree (validated); kSumResponses
/// additionally validates equal designs per merge.
Result<NcrCellMap> ComputeNcrCuboid(const CuboidLattice& lattice,
                                    const std::vector<NcrTuple>& tuples,
                                    CuboidId cuboid, NcrRollup rollup);

/// Materializes the partially-computed NCR cube: full m- and o-layers,
/// exception cells (per NcrCubeOptions) in between.
Result<NcrCube> ComputeNcrCube(std::shared_ptr<const CubeSchema> schema,
                               const std::vector<NcrTuple>& tuples,
                               const NcrCubeOptions& options);

}  // namespace regcube

#endif  // REGCUBE_CORE_NCR_CUBE_H_
