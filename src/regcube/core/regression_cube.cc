#include "regcube/core/regression_cube.h"

#include <algorithm>
#include <cmath>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/regression/aggregate.h"

namespace regcube {

std::string CubingStats::ToString() const {
  return StrPrintf(
      "CubingStats{build=%.3fs, compute=%.3fs, nodes=%lld, cells=%lld, "
      "exceptions=%lld, peak=%s, retained=%s}",
      build_tree_seconds, compute_seconds,
      static_cast<long long>(htree_nodes),
      static_cast<long long>(cells_computed),
      static_cast<long long>(exception_cells),
      FormatBytes(peak_memory_bytes).c_str(),
      FormatBytes(retained_memory_bytes).c_str());
}

RegressionCube::RegressionCube(std::shared_ptr<const CubeSchema> schema)
    : schema_(std::move(schema)), lattice_(*schema_) {
  RC_CHECK(schema_ != nullptr);
}

RegressionCube RegressionCube::Clone() const {
  RegressionCube copy(schema_);
  copy.m_layer_ = m_layer_;
  copy.o_layer_ = o_layer_;
  copy.exceptions_ = exceptions_;
  copy.stats_ = stats_;
  return copy;
}

const CellMap* RegressionCube::CellsAt(CuboidId cuboid) const {
  if (cuboid == lattice_.m_layer_id()) return &m_layer_;
  if (cuboid == lattice_.o_layer_id()) return &o_layer_;
  return exceptions_.CellsOf(cuboid);
}

std::string RegressionCube::ToString() const {
  return StrPrintf(
      "RegressionCube{%s, m-layer=%zu cells, o-layer=%zu cells, %lld "
      "exception cells}",
      schema_->ToString().c_str(), m_layer_.size(), o_layer_.size(),
      static_cast<long long>(exceptions_.total_cells()));
}

CellMap ComputeCuboidBruteForce(const CuboidLattice& lattice,
                                const std::vector<MLayerTuple>& tuples,
                                CuboidId cuboid) {
  CellMap cells;
  for (const MLayerTuple& tuple : tuples) {
    CellKey key = lattice.ProjectMLayerKey(tuple.key, cuboid);
    Isb& acc = cells.try_emplace(key).first->second;
    AccumulateStandardDim(acc, tuple.measure);
  }
  return cells;
}

std::vector<double> CollectIntermediateSlopes(
    const CuboidLattice& lattice, const std::vector<MLayerTuple>& tuples) {
  std::vector<double> slopes;
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    if (c == lattice.m_layer_id() || c == lattice.o_layer_id()) continue;
    CellMap cells = ComputeCuboidBruteForce(lattice, tuples, c);
    for (const auto& [key, isb] : cells) {
      slopes.push_back(std::fabs(isb.slope));
    }
  }
  std::sort(slopes.begin(), slopes.end());
  return slopes;
}

double CalibrateExceptionThreshold(const CuboidLattice& lattice,
                                   const std::vector<MLayerTuple>& tuples,
                                   double target_fraction) {
  target_fraction = std::clamp(target_fraction, 0.0, 1.0);
  std::vector<double> slopes = CollectIntermediateSlopes(lattice, tuples);
  if (slopes.empty()) return 0.0;
  if (target_fraction >= 1.0) return 0.0;  // everything is an exception
  // The top target_fraction of |slope| values pass the threshold.
  const double idx =
      (1.0 - target_fraction) * static_cast<double>(slopes.size() - 1);
  return slopes[static_cast<size_t>(idx)];
}

}  // namespace regcube
