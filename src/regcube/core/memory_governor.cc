#include "regcube/core/memory_governor.h"

#include <algorithm>
#include <utility>

namespace regcube {

MemoryGovernor::MemoryGovernor(std::int64_t budget_bytes,
                               std::function<std::int64_t()> usage)
    : budget_(budget_bytes), usage_(std::move(usage)) {}

void MemoryGovernor::AddRung(int priority, std::string name, ReclaimFn fn) {
  Rung rung;
  rung.priority = priority;
  rung.name = std::move(name);
  rung.fn = std::move(fn);
  // Insertion sort keeps rungs_ and rung_stats_ parallel and in ladder
  // order; registration happens a handful of times at construction.
  std::size_t pos = 0;
  while (pos < rungs_.size() && rungs_[pos].priority <= priority) ++pos;
  rungs_.insert(rungs_.begin() + pos, std::move(rung));
  RungStats stats;
  stats.name = rungs_[pos].name;
  rung_stats_.insert(rung_stats_.begin() + pos, std::move(stats));
}

bool MemoryGovernor::MaybeEnforce() {
  if (budget_ <= 0) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++checks_;
  }
  std::int64_t usage = usage_();
  if (usage <= budget_) return false;
  std::unique_lock<std::mutex> enforce(enforce_mu_, std::try_to_lock);
  if (!enforce.owns_lock()) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    max_over_bytes_ = std::max(max_over_bytes_, usage - budget_);
  }
  // Drain below the ceiling with headroom so one enforcement buys a
  // stretch of unimpeded ingest instead of re-firing on the next tuple.
  const std::int64_t target = budget_ - budget_ / 8;
  bool ran = false;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    usage = usage_();
    if (usage <= target) break;
    const std::int64_t reclaimed = rungs_[i].fn(usage - target);
    ran = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rung_stats_[i].invocations;
    rung_stats_[i].reclaimed_bytes += reclaimed;
  }
  if (ran) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++enforcements_;
  }
  return ran;
}

MemoryGovernor::Stats MemoryGovernor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats out;
  out.budget_bytes = budget_;
  out.checks = checks_;
  out.enforcements = enforcements_;
  out.max_over_bytes = max_over_bytes_;
  out.rungs = rung_stats_;
  return out;
}

}  // namespace regcube
