#include "regcube/core/memory_governor.h"

#include <algorithm>
#include <utility>

namespace regcube {

MemoryGovernor::MemoryGovernor(std::int64_t budget_bytes,
                               std::function<std::int64_t()> usage)
    : budget_(budget_bytes), usage_(std::move(usage)) {}

void MemoryGovernor::AddRung(int priority, std::string name, ReclaimFn fn) {
  Rung rung;
  rung.priority = priority;
  rung.name = std::move(name);
  rung.fn = std::move(fn);
  // Insertion sort keeps rungs_ and rung_stats_ parallel and in ladder
  // order; registration happens a handful of times at construction.
  std::size_t pos = 0;
  while (pos < rungs_.size() && rungs_[pos].priority <= priority) ++pos;
  rungs_.insert(rungs_.begin() + pos, std::move(rung));
  RungStats stats;
  stats.name = rungs_[pos].name;
  rung_stats_.insert(rung_stats_.begin() + pos, std::move(stats));
}

void MemoryGovernor::AddUsageProbe(std::function<std::int64_t()> probe) {
  probes_.push_back(std::move(probe));
}

std::int64_t MemoryGovernor::TotalUsage() const {
  std::int64_t usage = usage_();
  for (const auto& probe : probes_) usage += probe();
  return usage;
}

bool MemoryGovernor::MaybeEnforce() {
  if (budget_ <= 0) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++checks_;
  }
  std::int64_t usage = TotalUsage();
  if (usage <= budget_) {
    exhausted_.store(false, std::memory_order_relaxed);
    return false;
  }
  std::unique_lock<std::mutex> enforce(enforce_mu_, std::try_to_lock);
  if (!enforce.owns_lock()) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    max_over_bytes_ = std::max(max_over_bytes_, usage - budget_);
  }
  // Drain below the ceiling with headroom so one enforcement buys a
  // stretch of unimpeded ingest instead of re-firing on the next tuple.
  const std::int64_t target = budget_ - budget_ / 8;
  bool ran = false;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    usage = TotalUsage();
    if (usage <= target) break;
    const std::int64_t reclaimed = rungs_[i].fn(usage - target);
    ran = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rung_stats_[i].invocations;
    rung_stats_[i].reclaimed_bytes += reclaimed;
  }
  // The run is "exhausted" when every rung has had its chance and usage
  // still sits above the full budget: nothing left to evict. Degraded
  // ingest (typed rejects) keys off this until pressure drops.
  usage = TotalUsage();
  const bool still_over = usage > budget_;
  exhausted_.store(still_over, std::memory_order_relaxed);
  if (ran) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++enforcements_;
    if (still_over) ++exhausted_runs_;
  }
  return ran;
}

bool MemoryGovernor::exhausted() const {
  return exhausted_.load(std::memory_order_relaxed);
}

MemoryGovernor::Stats MemoryGovernor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats out;
  out.budget_bytes = budget_;
  out.checks = checks_;
  out.enforcements = enforcements_;
  out.exhausted_runs = exhausted_runs_;
  out.max_over_bytes = max_over_bytes_;
  out.rungs = rung_stats_;
  return out;
}

}  // namespace regcube
