#include "regcube/core/mo_cubing.h"

#include "regcube/common/logging.h"
#include "regcube/common/stopwatch.h"
#include "regcube/common/thread_pool.h"
#include "regcube/htree/htree_cubing.h"

namespace regcube {

Result<RegressionCube> ComputeMoCubing(
    std::shared_ptr<const CubeSchema> schema,
    const std::vector<MLayerTuple>& tuples, const MoCubingOptions& options) {
  RC_CHECK(schema != nullptr);
  MemoryTracker local_tracker;
  MemoryTracker& tracker = options.tracker ? *options.tracker : local_tracker;

  RegressionCube cube(schema);
  const CuboidLattice& lattice = cube.lattice();
  CubingStats& stats = cube.mutable_stats();

  // Step 1: aggregate the stream to the m-layer and build the H-tree,
  // regression points at the leaves only.
  Stopwatch build_timer;
  HTree::Options tree_options;
  tree_options.attribute_order = options.attribute_order.empty()
                                     ? CardinalityAscendingOrder(*schema)
                                     : options.attribute_order;
  tree_options.store_nonleaf_measures = false;
  auto tree_result = HTree::Build(*schema, tuples, std::move(tree_options));
  if (!tree_result.ok()) return tree_result.status();
  HTree tree = std::move(tree_result).value();
  stats.build_tree_seconds = build_timer.ElapsedSeconds();
  stats.htree_nodes = tree.num_nodes();
  stats.htree_bytes = tree.MemoryBytes();
  tracker.Add("htree", stats.htree_bytes);

  // The m-layer is retained in full (it is the base of the stored cube).
  Stopwatch compute_timer;
  for (MLayerTuple& cell : tree.MLayerCells()) {
    cube.mutable_m_layer().emplace(cell.key, cell.measure);
  }
  tracker.Add("m-layer", CellMapMemoryBytes(cube.m_layer()));

  // Step 2: H-cube every cuboid from the m-layer up to the o-layer.
  // All cells are computed; only exception cells are retained in between
  // ("except for the o-layer in which all cells are retained for
  // observation").
  if (lattice.o_layer_id() == lattice.m_layer_id()) {
    // Degenerate lattice: the single cuboid is both critical layers.
    cube.mutable_o_layer() = cube.m_layer();
    tracker.Add("o-layer", CellMapMemoryBytes(cube.o_layer()));
  }

  // Retains one computed cuboid into the cube (o-layer in full, exception
  // cells in between). Always runs sequentially so stats accumulate
  // deterministically, whether the cells were cubed serially or on a pool.
  // Cells stay in the kernel's transient form; only the o-layer (retained
  // in full) pays a CellMap materialization.
  auto fold = [&](CuboidId cuboid, const CuboidCells& cells) {
    stats.cells_computed += cells.size();
    if (cuboid == lattice.o_layer_id()) {
      cube.mutable_o_layer() = cells.ToCellMap();
      tracker.Add("o-layer", CellMapMemoryBytes(cube.o_layer()));
      return;
    }
    const int depth = SpecDepth(lattice.spec(cuboid));
    CellMap retained;
    cells.ForEachWhere(
        options.policy.TestFor(cuboid, depth),
        [&](const CellKey& key, const Isb& isb) { retained.emplace(key, isb); });
    stats.exception_cells += static_cast<std::int64_t>(retained.size());
    tracker.Add("exceptions", CellMapMemoryBytes(retained));
    cube.mutable_exceptions().Adopt(cuboid, std::move(retained));
  };

  std::vector<CuboidId> cuboids;
  cuboids.reserve(static_cast<size_t>(lattice.num_cuboids()));
  for (CuboidId cuboid = 0; cuboid < lattice.num_cuboids(); ++cuboid) {
    if (cuboid != lattice.m_layer_id()) cuboids.push_back(cuboid);
  }

  // A pool without real parallelism must keep the sequential loop: the
  // partitioned path holds every cuboid's transient cells alive at once,
  // a memory multiple worth paying only for a wall-clock return.
  if (options.pool != nullptr && options.pool->num_threads() > 1) {
    // Pool-partitioned: all cuboids' transient cells are alive at once, and
    // the peak accounting says so honestly.
    std::vector<CuboidCells> maps = ComputeCuboidCellsTransientPartitioned(
        tree, lattice, cuboids, options.pool);
    std::int64_t transient_bytes = 0;
    for (const CuboidCells& m : maps) transient_bytes += m.MemoryBytes();
    tracker.Add("transient", transient_bytes);
    for (size_t i = 0; i < cuboids.size(); ++i) {
      fold(cuboids[i], maps[i]);
    }
    tracker.Release("transient", transient_bytes);
  } else {
    for (CuboidId cuboid : cuboids) {
      const CuboidCells cells =
          ComputeCuboidCellsTransient(tree, lattice, cuboid);
      const std::int64_t transient_bytes = cells.MemoryBytes();
      tracker.Add("transient", transient_bytes);
      fold(cuboid, cells);
      tracker.Release("transient", transient_bytes);
    }
  }
  stats.compute_seconds = compute_timer.ElapsedSeconds();

  stats.peak_memory_bytes = tracker.peak_bytes();
  stats.retained_memory_bytes =
      stats.htree_bytes + CellMapMemoryBytes(cube.m_layer()) +
      CellMapMemoryBytes(cube.o_layer()) + cube.exceptions().MemoryBytes();
  return cube;
}

}  // namespace regcube
