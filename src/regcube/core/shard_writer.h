#ifndef REGCUBE_CORE_SHARD_WRITER_H_
#define REGCUBE_CORE_SHARD_WRITER_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/core/ingest_queue.h"

namespace regcube {

/// The shard-owner thread of the async ingest subsystem: drains one
/// shard's IngestQueue and applies each drained batch through the `absorb`
/// callback. With a writer attached the shard is single-writer — callers
/// only ever touch the queue, and the owner takes the shard mutex once
/// per drained batch, never per tuple. Inside that hold the absorb also
/// *publishes*: the successor generation (only the batch's cells
/// re-frozen) is swapped into the shard's atomic publication pointer, so
/// readers gather from the last published generation without ever taking
/// the mutex — the lock is down to absorb vs. the structural edits
/// (seal, epoch roll, compaction re-pointing). Tilt-frame maintenance,
/// dirty-list bookkeeping and member-index appends all happen here, off
/// the callers' threads.
///
/// `absorb` runs on the owner thread only. It returns how many of the
/// batch's tuples the shard engine accepted plus the first error; the
/// writer acknowledges the batch to the queue either way, which is what
/// lets Flush() terminate even when some tuples were refused (the error is
/// recorded on the queue and surfaced by the next Flush()).
class ShardWriter {
 public:
  struct AbsorbResult {
    std::int64_t absorbed = 0;
    Status status;
  };
  using AbsorbFn =
      std::function<AbsorbResult(const std::vector<StreamTuple>&)>;
  using PostBatchFn = std::function<void()>;

  /// Starts the owner thread immediately. `queue` is not owned and must
  /// outlive Stop()/destruction. `post_batch` (optional) runs on the owner
  /// thread after each batch is absorbed AND acknowledged — off the Flush
  /// critical path, which is where the memory governor's enforcement hook
  /// lives: eviction work never holds up a caller waiting on the queue.
  ShardWriter(IngestQueue* queue, AbsorbFn absorb,
              PostBatchFn post_batch = nullptr);

  /// Stops via Stop() if the owner thread is still running.
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Closes the queue, lets the owner drain whatever is already accepted,
  /// and joins the thread. Idempotent. After Stop() the queue rejects new
  /// tuples with FailedPrecondition.
  void Stop();

 private:
  void Loop();

  IngestQueue* queue_;
  AbsorbFn absorb_;
  PostBatchFn post_batch_;
  std::thread thread_;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_SHARD_WRITER_H_
