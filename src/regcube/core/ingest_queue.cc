#include "regcube/core/ingest_queue.h"

#include <algorithm>
#include <chrono>

#include "regcube/common/str.h"

namespace regcube {

namespace {
std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

double P99FromLatencyHistogram(const std::vector<std::int64_t>& hist,
                               std::int64_t samples) {
  if (samples == 0) return 0.0;
  const std::int64_t target = (samples * 99 + 99) / 100;  // ceil(0.99 * n)
  std::int64_t seen = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    seen += hist[i];
    if (seen >= target) {
      // Upper bound of bucket i is 2^i ns (bucket 0: 1 ns).
      return static_cast<double>(1ll << std::min<size_t>(i, 62)) / 1000.0;
    }
  }
  return 0.0;
}

void ShardIngestStats::Merge(const ShardIngestStats& other) {
  depth += other.depth;
  high_water += other.high_water;
  enqueued += other.enqueued;
  absorbed += other.absorbed;
  dropped += other.dropped;
  rejected += other.rejected;
  blocked += other.blocked;
  absorb_errors += other.absorb_errors;
  if (!other.latency_hist.empty()) {
    if (latency_hist.size() < other.latency_hist.size()) {
      latency_hist.resize(other.latency_hist.size(), 0);
    }
    for (size_t i = 0; i < other.latency_hist.size(); ++i) {
      latency_hist[i] += other.latency_hist[i];
    }
  }
  latency_samples += other.latency_samples;
  if (!latency_hist.empty() && latency_samples > 0) {
    // The percentile of the union, recomputed from the summed buckets —
    // never an average of per-shard percentiles.
    p99_enqueue_us = P99FromLatencyHistogram(latency_hist, latency_samples);
  } else if (other.p99_enqueue_us > p99_enqueue_us) {
    p99_enqueue_us = other.p99_enqueue_us;  // no histogram: worst dominates
  }
}

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  return "unknown";
}

IngestQueue::IngestQueue(std::int64_t capacity, BackpressurePolicy policy)
    : capacity_(capacity), policy_(policy), ring_(capacity) {
  RC_CHECK(capacity >= 1) << "queue capacity must be >= 1, got " << capacity;
}

IngestTicket IngestQueue::Enqueue(StreamTuple* tuples, std::int64_t n) {
  IngestTicket ticket;
  ticket.attempted = n;
  if (n == 0) return ticket;
  const std::int64_t start_ns = NowNs();

  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t dropped_before = dropped_;
  bool waited = false;
  for (std::int64_t i = 0; i < n; ++i) {
    bool refused = false;
    while (!closed_ && ring_.full() && !refused) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          waited = true;
          not_empty_.notify_one();  // make sure the consumer is coming
          not_full_.wait(lock, [this] { return !ring_.full() || closed_; });
          break;
        case BackpressurePolicy::kDropOldest:
          ring_.PopFront();
          ++dropped_;
          // An eviction resolves that tuple for any pending Flush.
          resolved_.notify_all();
          break;
        case BackpressurePolicy::kReject:
          refused = true;
          break;
      }
    }
    if (refused) {
      const std::int64_t tail = n - i;
      rejected_ += tail;
      ticket.rejected = tail;
      ticket.status = Status::ResourceExhausted(StrPrintf(
          "ingest queue full (capacity %lld): %lld of %lld tuples rejected",
          static_cast<long long>(capacity_), static_cast<long long>(tail),
          static_cast<long long>(n)));
      break;
    }
    if (closed_) {
      ticket.rejected += n - i;
      ticket.status = Status::FailedPrecondition(
          "ingest queue is closed (engine shutting down)");
      break;
    }
    ring_.PushBack(std::move(tuples[i]));
    ++enqueued_;
    ++ticket.enqueued;
    high_water_ = std::max(high_water_, ring_.size());
  }
  // Evictions by other producers can interleave only while this call waits
  // in kBlock mode, and kBlock never evicts — so the cumulative delta is
  // exactly this call's evictions.
  ticket.dropped = static_cast<std::int64_t>(dropped_ - dropped_before);
  if (waited) ++blocked_calls_;
  if (ticket.enqueued > 0) not_empty_.notify_one();
  RecordEnqueueLatencyLocked(NowNs() - start_ns);
  return ticket;
}

std::int64_t IngestQueue::PopAll(std::vector<StreamTuple>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !ring_.empty() || closed_; });
  const std::int64_t n = ring_.size();
  out->reserve(out->size() + static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out->push_back(ring_.PopFront());
  if (n > 0) not_full_.notify_all();
  return n;
}

void IngestQueue::MarkAbsorbed(std::int64_t popped, std::int64_t absorbed,
                               const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  absorbed_ += static_cast<std::uint64_t>(absorbed);
  failed_ += static_cast<std::uint64_t>(popped - absorbed);
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  resolved_.notify_all();
}

std::uint64_t IngestQueue::enqueued_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_;
}

void IngestQueue::WaitResolved(std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  resolved_.wait(lock, [this, seq] {
    return absorbed_ + failed_ + dropped_ >= seq;
  });
}

Status IngestQueue::TakeFirstError() {
  std::lock_guard<std::mutex> lock(mu_);
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
  resolved_.notify_all();
}

ShardIngestStats IngestQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardIngestStats stats;
  stats.depth = ring_.size();
  stats.high_water = high_water_;
  stats.enqueued = static_cast<std::int64_t>(enqueued_);
  stats.absorbed = static_cast<std::int64_t>(absorbed_);
  stats.dropped = static_cast<std::int64_t>(dropped_);
  stats.rejected = rejected_;
  stats.blocked = blocked_calls_;
  stats.absorb_errors = static_cast<std::int64_t>(failed_);
  stats.latency_hist.assign(latency_ns_buckets_,
                            latency_ns_buckets_ + kLatencyBuckets);
  stats.latency_samples = latency_samples_;
  stats.p99_enqueue_us =
      P99FromLatencyHistogram(stats.latency_hist, latency_samples_);
  return stats;
}

void IngestQueue::RecordEnqueueLatencyLocked(std::int64_t ns) {
  int bucket = 0;
  for (std::int64_t v = ns; v > 0 && bucket < kLatencyBuckets - 1; v >>= 1) {
    ++bucket;
  }
  ++latency_ns_buckets_[bucket];
  ++latency_samples_;
}

}  // namespace regcube
