#include "regcube/core/query.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/regression/aggregate.h"

namespace regcube {

CubeView::CubeView(const RegressionCube& cube, const ExceptionPolicy& policy)
    : cube_(&cube), policy_(&policy) {}

bool CubeView::IsExceptionCell(CuboidId cuboid, const CellKey& key,
                               const Isb& isb) const {
  (void)key;
  return policy_->IsException(isb, cuboid,
                              SpecDepth(cube_->lattice().spec(cuboid)));
}

Result<Isb> CubeView::GetCell(CuboidId cuboid, const CellKey& key) const {
  const CellMap* cells = cube_->CellsAt(cuboid);
  if (cells != nullptr) {
    auto it = cells->find(key);
    if (it != cells->end()) return it->second;
  }
  return Status::NotFound(StrPrintf("cell %s of cuboid %s was not retained",
                                    key.ToString().c_str(),
                                    cube_->lattice().CuboidName(cuboid).c_str()));
}

Result<Isb> CubeView::ComputeCellOnTheFly(CuboidId cuboid,
                                          const CellKey& key) const {
  const CuboidLattice& lattice = cube_->lattice();
  Isb acc;
  bool found = false;
  for (const auto& [m_key, isb] : cube_->m_layer()) {
    if (lattice.ProjectMLayerKey(m_key, cuboid) == key) {
      AccumulateStandardDim(acc, isb);
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound(StrPrintf(
        "cell %s of cuboid %s has no descendant m-layer cells",
        key.ToString().c_str(), lattice.CuboidName(cuboid).c_str()));
  }
  return acc;
}

std::vector<CellResult> CubeView::ExceptionsAt(CuboidId cuboid) const {
  std::vector<CellResult> out;
  const CellMap* cells = cube_->CellsAt(cuboid);
  if (cells == nullptr) return out;
  for (const auto& [key, isb] : *cells) {
    if (IsExceptionCell(cuboid, key, isb)) {
      out.push_back(CellResult{cuboid, key, isb, true});
    }
  }
  return out;
}

std::vector<CellResult> CubeView::DrillDown(CuboidId cuboid,
                                            const CellKey& key) const {
  const CuboidLattice& lattice = cube_->lattice();
  std::vector<CellResult> out;
  for (CuboidId child : lattice.DrillChildren(cuboid)) {
    const CellMap* cells = cube_->CellsAt(child);
    if (cells == nullptr) continue;
    for (const auto& [child_key, isb] : *cells) {
      if (!lattice.KeyIsDescendant(child_key, child, key, cuboid)) continue;
      if (!IsExceptionCell(child, child_key, isb)) continue;
      out.push_back(CellResult{child, child_key, isb, true});
    }
  }
  return out;
}

std::vector<CellResult> CubeView::ExceptionSupporters(
    CuboidId cuboid, const CellKey& key) const {
  std::vector<CellResult> out;
  std::unordered_set<std::uint64_t> seen;  // (cuboid, key-hash) dedupe
  std::deque<CellRef> frontier;
  frontier.push_back(CellRef{cuboid, key});
  while (!frontier.empty()) {
    CellRef cur = frontier.front();
    frontier.pop_front();
    for (const CellResult& child : DrillDown(cur.cuboid, cur.key)) {
      const std::uint64_t tag =
          child.key.Hash() * 31 + static_cast<std::uint64_t>(child.cuboid);
      if (!seen.insert(tag).second) continue;
      out.push_back(child);
      frontier.push_back(CellRef{child.cuboid, child.key});
    }
  }
  return out;
}

std::vector<CellResult> CubeView::TopExceptions(std::size_t n) const {
  std::vector<CellResult> all;
  for (CuboidId cuboid : cube_->exceptions().Cuboids()) {
    const CellMap* cells = cube_->exceptions().CellsOf(cuboid);
    for (const auto& [key, isb] : *cells) {
      all.push_back(CellResult{cuboid, key, isb, true});
    }
  }
  std::sort(all.begin(), all.end(), [](const CellResult& a,
                                       const CellResult& b) {
    return std::fabs(a.isb.slope) > std::fabs(b.isb.slope);
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string RenderCellWith(const CubeSchema& schema,
                           const CuboidLattice& lattice,
                           const CellResult& cell) {
  const LayerSpec& spec = lattice.spec(cell.cuboid);
  std::vector<std::string> parts;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const int level = spec[static_cast<size_t>(d)];
    if (level == 0) {
      parts.push_back("*");
    } else {
      parts.push_back(schema.dim(d).hierarchy().Label(level, cell.key[d]));
    }
  }
  return StrPrintf("[%s] slope=%+.5f base=%.4f%s",
                   StrJoin(parts, ", ").c_str(), cell.isb.slope,
                   cell.isb.base, cell.is_exception ? "  (EXCEPTION)" : "");
}

std::string CubeView::RenderCell(const CellResult& cell) const {
  return RenderCellWith(cube_->schema(), cube_->lattice(), cell);
}

}  // namespace regcube
