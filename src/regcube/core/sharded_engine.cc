#include "regcube/core/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"

namespace regcube {

ShardedStreamEngine::ShardedStreamEngine(
    std::shared_ptr<const CubeSchema> schema, Options options, int num_shards,
    std::shared_ptr<ThreadPool> pool)
    : schema_(std::move(schema)),
      lattice_(*schema_),
      options_(std::move(options)),
      mapper_(std::move(options_.key_mapper)),
      pool_(std::move(pool)),
      clock_(options_.start_tick) {
  RC_CHECK(schema_ != nullptr);
  RC_CHECK(options_.tilt_policy != nullptr);
  RC_CHECK(num_shards >= 1) << "num_shards must be >= 1, got " << num_shards;
  options_.key_mapper = nullptr;  // applied here, before shard hashing
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(schema_, options_));
  }
}

int ShardedStreamEngine::ShardIndex(const CellKey& mapped_key) const {
  return static_cast<int>(mapped_key.Hash() % shards_.size());
}

void ShardedStreamEngine::BumpClock(TimeTick t) {
  TimeTick cur = clock_.load(std::memory_order_relaxed);
  while (cur < t &&
         !clock_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
  }
}

Status ShardedStreamEngine::Ingest(const StreamTuple& tuple) {
  const CellKey key = mapper_ ? mapper_(tuple.key) : tuple.key;
  Shard& shard = *shards_[static_cast<size_t>(ShardIndex(key))];
  Status status;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    status = shard.engine.Ingest({key, tuple.tick, tuple.value});
  }
  if (status.ok()) {
    BumpClock(tuple.tick);
  }
  // A rejected tuple can still have created the cell's frame; move the
  // revision unconditionally so snapshot caches never serve stale state.
  revision_.fetch_add(1, std::memory_order_release);
  return status;
}

IngestReport ShardedStreamEngine::IngestBatch(
    const std::vector<StreamTuple>& tuples) {
  std::vector<std::vector<StreamTuple>> partitions(shards_.size());
  TimeTick max_tick = clock_.load(std::memory_order_relaxed);
  for (const StreamTuple& t : tuples) {
    const CellKey key = mapper_ ? mapper_(t.key) : t.key;
    partitions[static_cast<size_t>(ShardIndex(key))].push_back(
        {key, t.tick, t.value});
    max_tick = std::max(max_tick, t.tick);
  }
  IngestReport report;
  report.attempted = static_cast<std::int64_t>(tuples.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (partitions[i].empty()) continue;
    Shard& shard = *shards_[i];
    IngestReport shard_report;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard_report = shard.engine.IngestBatch(partitions[i]);
    }
    report.absorbed += shard_report.absorbed;
    if (!shard_report.ok()) {
      report.status = std::move(shard_report.status);
      break;
    }
  }
  if (report.ok()) {
    BumpClock(max_tick);
  }
  // Earlier shards keep their prefix even on error, so the state changed
  // either way: the revision must move or snapshot caches go stale. (The
  // clock self-corrects in the next gather/seal, which maxes over shard
  // clocks.)
  revision_.fetch_add(1, std::memory_order_release);
  return report;
}

std::vector<std::unique_lock<std::mutex>> ShardedStreamEngine::LockAll()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  return locks;
}

Status ShardedStreamEngine::AlignLocked() {
  // The global clock must dominate every shard's local view before the
  // shards are driven to it (a writer may have raced ahead of clock_).
  TimeTick target = clock_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    target = std::max(target, shard->engine.now());
  }
  BumpClock(target);
  for (auto& shard : shards_) {
    if (shard->engine.now() < target) {
      RC_RETURN_IF_ERROR(shard->engine.SealThrough(target - 1));
    }
  }
  return Status::OK();
}

Status ShardedStreamEngine::SealThrough(TimeTick t) {
  auto locks = LockAll();
  BumpClock(t + 1);
  RC_RETURN_IF_ERROR(AlignLocked());
  revision_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

ShardedStreamEngine::GatheredCells ShardedStreamEngine::GatherAlignedCells() {
  GatheredCells out;
  out.revision = revision_.load(std::memory_order_acquire);

  // Phase 1 — gather: freeze each shard's cells holding only that shard's
  // lock. With a pool, shards are copied concurrently; either way no lock
  // spans another shard's copy, so writers on other shards keep flowing.
  const size_t n = shards_.size();
  std::vector<std::vector<CellSnapshot>> per_shard(n);
  std::vector<TimeTick> shard_now(n, 0);
  auto gather_one = [&](std::int64_t i) {
    Shard& shard = *shards_[static_cast<size_t>(i)];
    std::lock_guard<std::mutex> lock(shard.mu);
    per_shard[static_cast<size_t>(i)] = shard.engine.ExportCells();
    shard_now[static_cast<size_t>(i)] = shard.engine.now();
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(static_cast<std::int64_t>(n), gather_one);
  } else {
    for (size_t i = 0; i < n; ++i) gather_one(static_cast<std::int64_t>(i));
  }

  // Phase 2 — align outside the locks, on the copies: drive every frozen
  // frame to the max clock seen, so slot structures agree across shards
  // exactly as the old all-locks alignment produced.
  TimeTick target = clock_.load(std::memory_order_acquire);
  for (TimeTick t : shard_now) target = std::max(target, t);
  out.clock = target;

  size_t total = 0;
  for (const auto& cells : per_shard) total += cells.size();
  out.cells.reserve(total);
  for (auto& cells : per_shard) {
    out.cells.insert(out.cells.end(),
                     std::make_move_iterator(cells.begin()),
                     std::make_move_iterator(cells.end()));
  }
  auto align_one = [&](std::int64_t i) {
    Status s = out.cells[static_cast<size_t>(i)].frame.AdvanceTo(target);
    RC_CHECK(s.ok()) << s.ToString();
  };
  if (pool_ != nullptr && total > 1) {
    pool_->ParallelFor(static_cast<std::int64_t>(total), align_one);
  } else {
    for (size_t i = 0; i < total; ++i) align_one(static_cast<std::int64_t>(i));
  }

  std::sort(out.cells.begin(), out.cells.end(),
            [](const CellSnapshot& a, const CellSnapshot& b) {
              return CanonicalKeyLess(a.key, b.key);
            });
  return out;
}

Result<std::vector<MLayerTuple>> ShardedStreamEngine::SnapshotWindow(int level,
                                                                     int k) {
  return SnapshotWindowOf(GatherAlignedCells().cells, level, k);
}

Result<RegressionCube> ShardedStreamEngine::ComputeCube(int level, int k) {
  GatheredCells gathered = GatherAlignedCells();
  return SnapshotCubeOf(schema_, gathered.cells, options_, level, k,
                        pool_.get());
}

Result<RegressionCube> ShardedStreamEngine::ComputeCubeAllLocks(int level,
                                                                int k) {
  auto locks = LockAll();
  RC_RETURN_IF_ERROR(AlignLocked());
  std::int64_t cells = 0;
  for (const auto& shard : shards_) cells += shard->engine.num_cells();
  if (cells == 0) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  std::vector<MLayerTuple> merged;
  merged.reserve(static_cast<size_t>(cells));
  for (auto& shard : shards_) {
    if (shard->engine.num_cells() == 0) continue;
    auto window = shard->engine.SnapshotWindow(level, k);
    if (!window.ok()) return window.status();
    merged.insert(merged.end(), window->begin(), window->end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const MLayerTuple& a, const MLayerTuple& b) {
              return CanonicalKeyLess(a.key, b.key);
            });
  return ComputeCubeFromWindow(schema_, merged, options_, nullptr);
}

Result<ShardedStreamEngine::DeckSeries> ShardedStreamEngine::ObservationDeck(
    int level) {
  return SnapshotDeckOf(GatherAlignedCells().cells, lattice_,
                        options_.tilt_policy->num_levels(), level);
}

Result<std::vector<ShardedStreamEngine::TrendChange>>
ShardedStreamEngine::DetectTrendChanges(int level, double threshold) {
  return SnapshotTrendChangesOf(GatherAlignedCells().cells, lattice_,
                                options_.tilt_policy->num_levels(), level,
                                threshold);
}

Result<Isb> ShardedStreamEngine::QueryCell(CuboidId cuboid, const CellKey& key,
                                           int level, int k) {
  return SnapshotCellOf(GatherAlignedCells().cells, lattice_, cuboid, key,
                        level, k);
}

Result<std::vector<Isb>> ShardedStreamEngine::QueryCellSeries(
    CuboidId cuboid, const CellKey& key, int level) {
  return SnapshotCellSeriesOf(GatherAlignedCells().cells, lattice_,
                              options_.tilt_policy->num_levels(), cuboid, key,
                              level);
}

std::int64_t ShardedStreamEngine::num_cells() const {
  std::int64_t cells = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    cells += shard->engine.num_cells();
  }
  return cells;
}

std::int64_t ShardedStreamEngine::MemoryBytes() const {
  std::int64_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->engine.MemoryBytes();
  }
  return bytes;
}

}  // namespace regcube
