#include "regcube/core/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "regcube/common/logging.h"
#include "regcube/common/memory_tracker.h"
#include "regcube/common/str.h"
#include "regcube/io/binary_io.h"

namespace regcube {

namespace {
// The whole-engine merged gather run, reported through MemoryTracker as
// the run's own entry footprint. Most frame blocks it points at are
// shared with the per-cell frozen cache and counted there
// ("snapshot.frozen_frames"); blocks re-materialized by clock alignment
// live only in the run (and any snapshots holding it) and are not
// individually tracked — the accounting is analytic, not exhaustive.
constexpr char kGatherCacheCategory[] = "snapshot.gather_cache";

// The per-shard ingest queues' preallocated ring slots (async mode only).
// Analytic like the rest: capacity * sizeof(StreamTuple) per shard, fixed
// for the engine's lifetime; heap storage retained by queued keys varies
// per tuple and is not tracked.
constexpr char kIngestQueueCategory[] = "ingest.queue";

std::int64_t SliceBytes(const SnapshotCells& cells) {
  return static_cast<std::int64_t>(cells.size() * sizeof(CellSnapshot));
}

// Re-entrancy guard for the export.dirty ladder rung: set while the rung
// runs, so that if any path it takes ever reaches MaybeEnforceBudget on
// the same thread, the enforcement skips instead of try_locking the
// governor's enforce mutex on the thread that already holds it (undefined
// behavior, not just a deadlock). The rung's current body (clean dirty
// queues + spill sweep) never re-enters, so this is pure defense.
thread_local bool tl_in_budget_rung = false;

struct ScopedFlag {
  explicit ScopedFlag(bool& flag) : flag_(flag) { flag_ = true; }
  ~ScopedFlag() { flag_ = false; }
  bool& flag_;
};

/// Re-materializes one frozen block iff a tilt unit ends between its
/// freeze tick and `target` — otherwise advancing it would seal nothing
/// and the block is shared as-is. Returns the bytes retained by the new
/// copy (0 when shared). The single sharing condition every realignment
/// path goes through.
std::int64_t RealignCellToClock(CellSnapshot& cell, TimeTick target,
                                const TiltPolicy& policy) {
  const TimeTick from = cell.frame->next_tick();
  if (from >= target || !policy.AnyUnitEndIn(from, target)) return 0;
  auto advanced = std::make_shared<TiltTimeFrame>(*cell.frame);
  Status s = advanced->AdvanceTo(target);
  RC_CHECK(s.ok()) << s.ToString();
  const std::int64_t bytes = advanced->MemoryBytes();
  cell.frame = std::move(advanced);
  return bytes;
}

/// Aligns every block in `cells` to `target` (copy-on-write per block via
/// RealignCellToClock). Parallel across `pool` when available — the
/// O(all cells) half of boundary rounds and the full-gather baseline.
void AlignRunToClock(std::vector<CellSnapshot>& cells, TimeTick target,
                     const TiltPolicy& policy, ThreadPool* pool,
                     GatherStats* stats) {
  std::atomic<std::int64_t> materialized{0};
  std::atomic<std::int64_t> bytes{0};
  auto align_one = [&](std::int64_t idx) {
    const std::int64_t copied = RealignCellToClock(
        cells[static_cast<size_t>(idx)], target, policy);
    if (copied > 0) {
      materialized.fetch_add(1, std::memory_order_relaxed);
      bytes.fetch_add(copied, std::memory_order_relaxed);
    }
  };
  const auto total = static_cast<std::int64_t>(cells.size());
  if (pool != nullptr && total > 1) {
    pool->ParallelFor(total, align_one);
  } else {
    for (std::int64_t i = 0; i < total; ++i) align_one(i);
  }
  if (stats != nullptr) {
    stats->materialized += materialized.load(std::memory_order_relaxed);
    stats->bytes_copied += bytes.load(std::memory_order_relaxed);
  }
}
}  // namespace

ShardedStreamEngine::ShardedStreamEngine(
    std::shared_ptr<const CubeSchema> schema, Options options, int num_shards,
    std::shared_ptr<ThreadPool> pool, IngestConfig ingest)
    : schema_(std::move(schema)),
      lattice_(*schema_),
      options_(std::move(options)),
      ingest_(ingest),
      mapper_(std::move(options_.key_mapper)),
      pool_(std::move(pool)),
      clock_(options_.start_tick) {
  RC_CHECK(schema_ != nullptr);
  RC_CHECK(options_.tilt_policy != nullptr);
  RC_CHECK(num_shards >= 1) << "num_shards must be >= 1, got " << num_shards;
  options_.key_mapper = nullptr;  // applied here, before shard hashing
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(schema_, options_));
  }
  if (ingest_.mode == IngestMode::kAsync) {
    RC_CHECK(ingest_.queue_capacity >= 1)
        << "ingest queue capacity must be >= 1, got "
        << ingest_.queue_capacity;
    queues_.reserve(static_cast<size_t>(num_shards));
    writers_.reserve(static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      queues_.push_back(std::make_unique<IngestQueue>(ingest_.queue_capacity,
                                                      ingest_.backpressure));
    }
    // Writers start only after every queue exists: an owner thread's
    // absorb callback touches shards_ and the counters, all built above.
    // The post-batch hook is the async-mode budget enforcement point: it
    // runs after the batch is acknowledged (Flush waiters are already
    // unblocked) and is a no-op until ConfigureStorage installs a
    // governor.
    for (int i = 0; i < num_shards; ++i) {
      const size_t shard_index = static_cast<size_t>(i);
      writers_.push_back(std::make_unique<ShardWriter>(
          queues_[shard_index].get(),
          [this, shard_index](const std::vector<StreamTuple>& batch) {
            return AbsorbDrained(shard_index, batch);
          },
          [this] { MaybeEnforceBudget(); }));
    }
  }
  if (options_.algorithm == StreamCubeEngine::Algorithm::kMoCubing) {
    cube_memo_ = std::make_unique<IncrementalCubeCache>(schema_, options_);
    // Patches seed their per-cuboid node indexes from the ingest-maintained
    // member index instead of chain-scanning the memoized tree. The memo is
    // owned by this engine, so the raw `this` capture cannot dangle.
    cube_memo_->set_member_lookup(
        [this](CuboidId cuboid, const std::vector<CellKey>& keys) {
          return MemberKeysForBatch(cuboid, keys);
        });
  }
}

int ShardedStreamEngine::ShardIndex(const CellKey& mapped_key) const {
  return static_cast<int>(mapped_key.Hash() % shards_.size());
}

void ShardedStreamEngine::BumpClock(TimeTick t) {
  TimeTick cur = clock_.load(std::memory_order_relaxed);
  while (cur < t &&
         !clock_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
  }
}

void ShardedStreamEngine::set_memory_tracker(MemoryTracker* tracker) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->engine.set_memory_tracker(tracker);
  }
  // Move the cached merged run's and the ingest queues' registrations
  // between trackers, so detach / re-attach keeps every tracker balanced.
  std::lock_guard<std::mutex> lock(gather_mu_);
  const std::int64_t queue_bytes = IngestQueueBytes();
  if (queue_bytes > 0) {
    if (tracker_ != nullptr) {
      tracker_->Release(kIngestQueueCategory, queue_bytes);
    }
    if (tracker != nullptr) tracker->Add(kIngestQueueCategory, queue_bytes);
  }
  if (gather_valid_) {
    const std::int64_t bytes = SliceBytes(*gather_cache_.cells);
    if (tracker_ != nullptr && bytes > 0) {
      tracker_->Release(kGatherCacheCategory, bytes);
    }
    if (tracker != nullptr && bytes > 0) {
      tracker->Add(kGatherCacheCategory, bytes);
    }
  }
  tracker_ = tracker;
  if (cube_memo_ != nullptr) cube_memo_->set_memory_tracker(tracker);
}

Status ShardedStreamEngine::PublishLocked(Shard& shard, GatherStats* stats) {
  StreamCubeEngine::FrozenSlice run;
  RC_RETURN_IF_ERROR(shard.engine.RefreshPublishedRun(&run, stats));
  auto pub = std::make_shared<ShardPublication>();
  pub->cells = std::move(run);
  pub->now = shard.engine.now();
  pub->revision = shard.engine.revision();
  shard.published.store(std::move(pub), std::memory_order_release);
  shard.version.store(shard.engine.revision(), std::memory_order_release);
  return Status::OK();
}

std::shared_ptr<const ShardedStreamEngine::ShardPublication>
ShardedStreamEngine::PublicationFor(size_t i, GatherStats* stats,
                                    Status* status) {
  Shard& shard = *shards_[i];
  // Fast path: the published generation reflects every completed write
  // (its revision matches the mirror, and both stores happened inside the
  // mutex before the write completed), so it can be served without ever
  // touching the mutex. A mismatch in either direction just means "take
  // the slow path" — a torn view can never be served fresh.
  auto pub = shard.published.load(std::memory_order_acquire);
  if (pub != nullptr &&
      pub->revision == shard.version.load(std::memory_order_acquire)) {
    if (stats != nullptr) {
      stats->cells += static_cast<std::int64_t>(pub->cells->size());
      ++stats->shards_reused;
    }
    return pub;
  }
  // Slow path (stale generation — sync-mode writes, seals, or a publish
  // the owner skipped on error): republish under the shard mutex.
  std::lock_guard<std::mutex> lock(shard.mu);
  Status s = PublishLocked(shard, stats);
  if (!s.ok()) {
    *status = std::move(s);
    return nullptr;
  }
  return shard.published.load(std::memory_order_acquire);
}

void ShardedStreamEngine::MirrorVersionsLocked() {
  for (auto& shard : shards_) {
    shard->version.store(shard->engine.revision(), std::memory_order_release);
  }
}

ShardWriter::AbsorbResult ShardedStreamEngine::AbsorbDrained(
    size_t i, const std::vector<StreamTuple>& batch) {
  ShardWriter::AbsorbResult out;
  Shard& shard = *shards_[i];
  bool changed;
  IngestReport report;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::uint64_t before = shard.engine.revision();
    report = shard.engine.IngestBatch(batch);
    changed = shard.engine.revision() != before;
    if (changed) {
      // Eager publish: the successor generation (only this batch's cells
      // re-frozen) is swapped in before MarkAbsorbed resolves the batch,
      // so a reader returning from Flush() takes the mutex-free path to
      // the flushed data. Best-effort — on a fault-in failure the old
      // generation stays up and readers republish on their slow path.
      Status published = PublishLocked(shard, nullptr);
      (void)published;
    }
    shard.version.store(shard.engine.revision(), std::memory_order_release);
  }
  out.absorbed = report.absorbed;
  out.status = std::move(report.status);
  // Clock follows what actually landed: the shard engine absorbs a strict
  // prefix of the drained batch (it stops at the first error), so max over
  // that prefix. Same fetch-max the sync path uses.
  TimeTick max_tick = 0;
  for (std::int64_t j = 0; j < out.absorbed; ++j) {
    max_tick = std::max(max_tick, batch[static_cast<size_t>(j)].tick);
  }
  if (out.absorbed > 0) BumpClock(max_tick);
  if (changed) {
    revision_.fetch_add(1, std::memory_order_release);
  }
  return out;
}

IngestTicket ShardedStreamEngine::IngestAsync(
    const std::vector<StreamTuple>& tuples) {
  RC_CHECK(ingest_.mode == IngestMode::kAsync)
      << "IngestAsync requires IngestMode::kAsync";
  // Budget-exhausted degradation precedes the queues: accepting tuples the
  // owner threads would only pile onto an engine that cannot shed bytes
  // turns overload into unbounded growth. A refused ticket is typed and
  // complete — nothing entered any queue.
  {
    Status admission = CheckIngestAdmission();
    if (!admission.ok()) {
      IngestTicket refused;
      refused.attempted = static_cast<std::int64_t>(tuples.size());
      refused.rejected = refused.attempted;
      refused.status = std::move(admission);
      return refused;
    }
  }
  // Map before hashing (same as the sync path) so the tuples queued for a
  // shard are exactly what its engine will absorb — the owner thread never
  // touches the mapper.
  std::vector<std::vector<StreamTuple>> partitions(shards_.size());
  for (const StreamTuple& t : tuples) {
    const CellKey key = mapper_ ? mapper_(t.key) : t.key;
    partitions[static_cast<size_t>(ShardIndex(key))].push_back(
        {key, t.tick, t.value});
  }
  IngestTicket ticket;
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].empty()) continue;
    ticket.Merge(queues_[i]->Enqueue(
        partitions[i].data(),
        static_cast<std::int64_t>(partitions[i].size())));
  }
  return ticket;
}

Status ShardedStreamEngine::Flush() {
  if (ingest_.mode != IngestMode::kAsync) return Status::OK();
  // Snapshot every queue's accept point first, then wait: tuples enqueued
  // by other producers after this line don't extend the wait, so Flush
  // terminates under sustained concurrent ingest.
  std::vector<std::uint64_t> targets(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    targets[i] = queues_[i]->enqueued_seq();
  }
  for (size_t i = 0; i < queues_.size(); ++i) {
    queues_[i]->WaitResolved(targets[i]);
  }
  Status first;
  for (auto& queue : queues_) {
    Status s = queue->TakeFirstError();
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  return first;
}

regcube::IngestStats ShardedStreamEngine::IngestStats() const {
  regcube::IngestStats out;
  out.mode = ingest_.mode;
  out.backpressure = ingest_.backpressure;
  if (ingest_.mode != IngestMode::kAsync) return out;
  out.queue_capacity = ingest_.queue_capacity;
  out.per_shard.reserve(queues_.size());
  for (const auto& queue : queues_) {
    out.per_shard.push_back(queue->Stats());
    out.total.Merge(out.per_shard.back());
  }
  return out;
}

std::int64_t ShardedStreamEngine::IngestQueueBytes() const {
  std::int64_t bytes = 0;
  for (const auto& queue : queues_) bytes += queue->SlotBytes();
  return bytes;
}

Status ShardedStreamEngine::CheckIngestAdmission() {
  // Degraded admission is opt-in through the backpressure policy: kBlock
  // and kDropOldest keep the legacy lossless/lossy semantics (the engine
  // absorbs and stays over budget, best effort); only kReject turns an
  // unreachable budget into typed rejects.
  if (ingest_.backpressure != BackpressurePolicy::kReject) {
    return Status::OK();
  }
  if (governor_ == nullptr || !governor_->exhausted()) return Status::OK();
  // One more chance before degrading: pressure may have dropped since the
  // exhausted run (a reader released a snapshot, a compaction landed), and
  // MaybeEnforce clears the flag the moment usage probes under budget.
  MaybeEnforceBudget();
  if (!governor_->exhausted()) return Status::OK();
  budget_rejects_.fetch_add(1, std::memory_order_relaxed);
  return Status::ResourceExhausted(StrPrintf(
      "memory budget of %lld bytes is unreachable: every eviction rung ran "
      "and usage is still over; ingest degraded to rejects until pressure "
      "drops",
      static_cast<long long>(budget_config_.budget_bytes)));
}

Status ShardedStreamEngine::Ingest(const StreamTuple& tuple) {
  if (ingest_.mode == IngestMode::kAsync) {
    return IngestAsync({tuple}).status;
  }
  RC_RETURN_IF_ERROR(CheckIngestAdmission());
  const CellKey key = mapper_ ? mapper_(tuple.key) : tuple.key;
  Shard& shard = *shards_[static_cast<size_t>(ShardIndex(key))];
  Status status;
  bool changed;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::uint64_t before = shard.engine.revision();
    status = shard.engine.Ingest({key, tuple.tick, tuple.value});
    changed = shard.engine.revision() != before;
    // Sync mode mirrors the version but does not publish: readers
    // republish on demand (their slow path), which is exactly the
    // mutex-gather baseline the async benches compare against.
    shard.version.store(shard.engine.revision(), std::memory_order_release);
  }
  if (status.ok()) {
    BumpClock(tuple.tick);
  }
  // The shard engine's revision moves exactly when observable state did
  // (an absorbed tuple, or a rejected one that still created its cell's
  // frame) — mirror that, so snapshot caches are invalidated precisely
  // when they must be and never when nothing changed.
  if (changed) {
    revision_.fetch_add(1, std::memory_order_release);
  }
  MaybeEnforceBudget();
  return status;
}

IngestReport ShardedStreamEngine::IngestBatch(
    const std::vector<StreamTuple>& tuples) {
  if (ingest_.mode == IngestMode::kAsync) {
    // Legacy door in async mode: `absorbed` counts acceptance into the
    // queues, not absorption — IngestAsync's ticket is the precise story.
    const IngestTicket ticket = IngestAsync(tuples);
    IngestReport report;
    report.attempted = ticket.attempted;
    report.absorbed = ticket.enqueued;
    report.status = ticket.status;
    return report;
  }
  IngestReport report;
  report.attempted = static_cast<std::int64_t>(tuples.size());
  {
    Status admission = CheckIngestAdmission();
    if (!admission.ok()) {
      report.status = std::move(admission);
      return report;
    }
  }
  std::vector<std::vector<StreamTuple>> partitions(shards_.size());
  TimeTick max_tick = clock_.load(std::memory_order_relaxed);
  for (const StreamTuple& t : tuples) {
    const CellKey key = mapper_ ? mapper_(t.key) : t.key;
    partitions[static_cast<size_t>(ShardIndex(key))].push_back(
        {key, t.tick, t.value});
    max_tick = std::max(max_tick, t.tick);
  }
  bool changed = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (partitions[i].empty()) continue;
    Shard& shard = *shards_[i];
    IngestReport shard_report;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const std::uint64_t before = shard.engine.revision();
      shard_report = shard.engine.IngestBatch(partitions[i]);
      changed = changed || shard.engine.revision() != before;
      shard.version.store(shard.engine.revision(),
                          std::memory_order_release);
    }
    report.absorbed += shard_report.absorbed;
    if (!shard_report.ok()) {
      report.status = std::move(shard_report.status);
      break;
    }
  }
  if (report.ok()) {
    BumpClock(max_tick);
  }
  // Earlier shards keep their prefix even on error, so any absorbed tuple
  // (or created cell) moved some shard's revision; mirror it globally.
  // (The clock self-corrects in the next gather/seal, which maxes over
  // shard clocks.)
  if (changed) {
    revision_.fetch_add(1, std::memory_order_release);
  }
  MaybeEnforceBudget();
  return report;
}

std::vector<std::unique_lock<std::mutex>> ShardedStreamEngine::LockAll()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  return locks;
}

Status ShardedStreamEngine::AlignLocked() {
  // The global clock must dominate every shard's local view before the
  // shards are driven to it (a writer may have raced ahead of clock_).
  TimeTick target = clock_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    target = std::max(target, shard->engine.now());
  }
  BumpClock(target);
  for (auto& shard : shards_) {
    if (shard->engine.now() < target) {
      RC_RETURN_IF_ERROR(shard->engine.SealThrough(target - 1));
    }
  }
  return Status::OK();
}

std::uint64_t ShardedStreamEngine::SumShardRevisionsLocked() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->engine.revision();
  return sum;
}

Status ShardedStreamEngine::SealThrough(TimeTick t) {
  // In async mode tuples with ticks <= t may still be in flight in the
  // queues; sealing past them would refuse them as late on absorption.
  // Drain first — and surface any pending absorb error rather than
  // silently sealing over it.
  RC_RETURN_IF_ERROR(Flush());
  auto locks = LockAll();
  const TimeTick clock_before = clock_.load(std::memory_order_acquire);
  BumpClock(t + 1);
  const std::uint64_t before = SumShardRevisionsLocked();
  RC_RETURN_IF_ERROR(AlignLocked());
  // A seal that neither sealed a slot anywhere nor advanced the global
  // clock changes nothing a read can see — re-sealing an already-aligned
  // engine keeps every revision-memoized snapshot valid. A clock advance
  // must move the revision even without a sealed slot, or cached
  // snapshots would keep reporting the pre-seal now(); the refresh is
  // cheap (the next gather patches zero cells).
  if (SumShardRevisionsLocked() != before || t + 1 > clock_before) {
    revision_.fetch_add(1, std::memory_order_release);
  }
  MirrorVersionsLocked();
  locks.clear();
  // Alignment grows frames (rolled-up slots materialize in coarser
  // levels), so a seal can carry the engine over budget even with no
  // ingest in flight; enforce after releasing the shard locks.
  MaybeEnforceBudget();
  return Status::OK();
}

ShardedStreamEngine::GatheredCells ShardedStreamEngine::GatherAlignedCells(
    GatherMode mode) {
  if (mode == GatherMode::kFull) return GatherFull();

  // Phase 0 — whole-engine cache: every read method at one revision shares
  // one gather, so SnapshotWindow + ObservationDeck + DetectTrendChanges
  // back to back pay for a single pass (the hit is a refcount copy).
  {
    const std::uint64_t rev = revision_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(gather_mu_);
    if (gather_valid_ && gather_cache_.revision == rev) {
      GatheredCells cached = gather_cache_;  // shares the merged run
      cached.stats = GatherStats{};
      cached.stats.cells = static_cast<std::int64_t>(cached.cells->size());
      cached.stats.shards_reused = num_shards();
      return cached;
    }
  }

  // One merged-run rebuild at a time: concurrent builders would duplicate
  // the splice work and race to install the result. The shards themselves
  // are read through their published pointers (no shard lock on the
  // steady-state path), so this is pure thundering-herd protection.
  std::lock_guard<std::mutex> work(gather_work_mu_);

  GatheredCells out;
  out.revision = revision_.load(std::memory_order_acquire);

  // Re-check the cache: the previous holder of the work lock probably
  // built exactly the run we came for.
  {
    std::lock_guard<std::mutex> lock(gather_mu_);
    if (gather_valid_ && gather_cache_.revision == out.revision) {
      GatheredCells cached = gather_cache_;
      cached.stats = GatherStats{};
      cached.stats.cells = static_cast<std::int64_t>(cached.cells->size());
      cached.stats.shards_reused = num_shards();
      return cached;
    }
  }

  // Phase 1 — publications: load each shard's last published generation.
  // A fresh publication (the steady-state async case: the owner thread
  // republished inside its absorb) is served without touching the shard
  // mutex at all; only a stale shard pays a locked republish, and that
  // refreezes just its changed cells — O(changed cells).
  const size_t n = shards_.size();
  std::vector<std::shared_ptr<const ShardPublication>> pubs(n);
  std::vector<GatherStats> stats(n);
  std::vector<Status> statuses(n);
  auto gather_one = [&](std::int64_t idx) {
    const size_t i = static_cast<size_t>(idx);
    pubs[i] = PublicationFor(i, &stats[i], &statuses[i]);
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(static_cast<std::int64_t>(n), gather_one);
  } else {
    for (size_t i = 0; i < n; ++i) gather_one(static_cast<std::int64_t>(i));
  }

  // A failed republish (fault-in error on a spilled cell) poisons the
  // whole run: return the typed error without touching the cache. Nothing
  // was lost — the failing shard kept its dirty list and retained run, so
  // the retry repeats exactly the failed work; fresh shards still serve
  // their publications for free.
  for (size_t i = 0; i < n; ++i) {
    if (pubs[i] == nullptr) {
      out.status = std::move(statuses[i]);
      out.cells = std::make_shared<std::vector<CellSnapshot>>();
      return out;
    }
  }

  TimeTick target = clock_.load(std::memory_order_acquire);
  for (const auto& pub : pubs) target = std::max(target, pub->now);
  out.clock = target;
  const TiltPolicy& policy = *options_.tilt_policy;

  // Phase 2 — fold, outside every lock. The published runs are sorted and
  // key-disjoint (cells are hash-partitioned), so a cascade of in-place
  // merges over copies yields the canonical merged run — pointer copies
  // only; no frame is touched here. The copies matter: alignment below
  // swaps frame pointers per cell, and the publications stay live for
  // concurrent point queries and later gathers.
  auto merged = std::make_shared<std::vector<CellSnapshot>>();
  size_t total = 0;
  for (const auto& pub : pubs) total += pub->cells->size();
  merged->reserve(total);
  for (const auto& pub : pubs) {
    if (pub->cells->empty()) continue;
    const auto middle = static_cast<std::ptrdiff_t>(merged->size());
    merged->insert(merged->end(), pub->cells->begin(), pub->cells->end());
    std::inplace_merge(merged->begin(), merged->begin() + middle,
                       merged->end(), CellSnapshotCanonicalLess);
  }
  // Per-block copy-on-write alignment: a block is re-materialized only if
  // a tilt unit ends between its freeze tick and the target (see
  // TiltPolicy::AnyUnitEndIn) — a run already at the clock shares every
  // block and this pass copies nothing.
  AlignRunToClock(*merged, target, policy, pool_.get(), &out.stats);
  out.cells = std::move(merged);
  for (const GatherStats& s : stats) out.stats.Merge(s);
  out.stats.cells = static_cast<std::int64_t>(out.cells->size());

  // Install as the new cache entry. Builders are serialized, so this is
  // strictly newer than whatever is cached; a racing writer may already
  // have moved the revision again, in which case the next gather rebuilds
  // from the (then fresher) publications.
  {
    std::lock_guard<std::mutex> lock(gather_mu_);
    if (tracker_ != nullptr) {
      if (gather_valid_) {
        tracker_->Release(kGatherCacheCategory,
                          SliceBytes(*gather_cache_.cells));
      }
      tracker_->Add(kGatherCacheCategory, SliceBytes(*out.cells));
    }
    gather_cache_ = out;  // refcount copy of the shared run
    gather_valid_ = true;
  }
  // The publish refresh above is the moment cells turn clean (spillable):
  // writes
  // and slot-sealing seals re-dirty them, so post-write enforcement can
  // find nothing to spill in a hot-everywhere stream. Enforcing here —
  // after the dirty lists drained, outside every shard lock — is what
  // lets a budgeted engine actually converge under ingest/read churn.
  MaybeEnforceBudget();
  return out;
}

ShardedStreamEngine::GatheredCells ShardedStreamEngine::GatherFull() {
  GatheredCells out;
  out.revision = revision_.load(std::memory_order_acquire);

  const size_t n = shards_.size();
  std::vector<std::vector<CellSnapshot>> slices(n);
  std::vector<GatherStats> stats(n);
  std::vector<Status> statuses(n);
  std::vector<TimeTick> shard_now(n, 0);
  auto gather_one = [&](std::int64_t idx) {
    const size_t i = static_cast<size_t>(idx);
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard_now[i] = shard.engine.now();
    statuses[i] = shard.engine.ExportCellsFull(&slices[i], &stats[i]);
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(static_cast<std::int64_t>(n), gather_one);
  } else {
    for (size_t i = 0; i < n; ++i) gather_one(static_cast<std::int64_t>(i));
  }
  for (Status& s : statuses) {
    if (!s.ok()) {
      out.status = std::move(s);
      out.cells = std::make_shared<std::vector<CellSnapshot>>();
      return out;
    }
  }

  TimeTick target = clock_.load(std::memory_order_acquire);
  for (TimeTick t : shard_now) target = std::max(target, t);
  out.clock = target;

  // Align every copy to the target, merge, sort canonically — the
  // pre-redesign read cost, retained as the bench/tests baseline.
  const TiltPolicy& policy = *options_.tilt_policy;
  auto merged = std::make_shared<std::vector<CellSnapshot>>();
  size_t total = 0;
  for (const auto& slice : slices) total += slice.size();
  merged->reserve(total);
  for (auto& slice : slices) {
    merged->insert(merged->end(), std::make_move_iterator(slice.begin()),
                   std::make_move_iterator(slice.end()));
  }
  AlignRunToClock(*merged, target, policy, pool_.get(), &out.stats);
  std::sort(merged->begin(), merged->end(), CellSnapshotCanonicalLess);
  out.cells = std::move(merged);
  for (const GatherStats& s : stats) out.stats.Merge(s);
  out.stats.cells = static_cast<std::int64_t>(out.cells->size());
  return out;
}

ShardedStreamEngine::MemberGather ShardedStreamEngine::GatherCellsMatching(
    CuboidId cuboid, const CellKey& key, PointLookup lookup) {
  MemberGather out;
  const size_t n = shards_.size();
  std::vector<std::vector<CellSnapshot>> slices(n);
  std::vector<TimeTick> shard_now(n, 0);
  std::vector<std::int64_t> totals(n, 0);

  if (lookup == PointLookup::kScan) {
    // Oracle path, fully under the shard locks: every key projected, every
    // member frozen in place — the pre-index cost model, retained for
    // bit-identity tests.
    std::vector<Status> statuses(n);
    auto gather_one = [&](std::int64_t idx) {
      const size_t i = static_cast<size_t>(idx);
      Shard& shard = *shards_[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard_now[i] = shard.engine.now();
      totals[i] = shard.engine.num_cells();
      statuses[i] = shard.engine.ExportMatchingCells(cuboid, key, &slices[i],
                                                     nullptr, lookup);
    };
    if (pool_ != nullptr && n > 1) {
      pool_->ParallelFor(static_cast<std::int64_t>(n), gather_one);
    } else {
      for (size_t i = 0; i < n; ++i) gather_one(static_cast<std::int64_t>(i));
    }
    for (Status& s : statuses) {
      if (!s.ok()) {
        out.status = std::move(s);
        out.cells.clear();
        return out;
      }
    }
  } else {
    // Indexed path: the shard lock covers only the member-index hash probe
    // (no frame work at all); the members are then resolved against the
    // shard's published run outside the lock. The probe-then-load order
    // makes the RC_CHECK safe: a key the index held when we unlocked is in
    // any publication at least that fresh (cells are never erased, and
    // PublicationFor never serves a generation older than the last
    // completed write).
    std::vector<std::vector<CellKey>> members(n);
    for (size_t i = 0; i < n; ++i) {
      Shard& shard = *shards_[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard_now[i] = shard.engine.now();
      totals[i] = shard.engine.num_cells();
      shard.engine.AppendMemberKeys(cuboid, key, &members[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (members[i].empty()) continue;
      Status status;
      auto pub = PublicationFor(i, nullptr, &status);
      if (pub == nullptr) {
        out.status = std::move(status);
        out.cells.clear();
        return out;
      }
      shard_now[i] = std::max(shard_now[i], pub->now);
      slices[i].reserve(members[i].size());
      for (const CellKey& member : members[i]) {
        auto it = std::lower_bound(
            pub->cells->begin(), pub->cells->end(), member,
            [](const CellSnapshot& a, const CellKey& b) {
              return CanonicalKeyLess(a.key, b);
            });
        RC_CHECK(it != pub->cells->end() && it->key == member)
            << "member key missing from published run";
        slices[i].push_back(*it);
      }
    }
  }

  TimeTick target = clock_.load(std::memory_order_acquire);
  for (TimeTick t : shard_now) target = std::max(target, t);
  out.clock = target;
  for (std::int64_t t : totals) out.total_cells += t;

  size_t matches = 0;
  for (const auto& slice : slices) matches += slice.size();
  out.cells.reserve(matches);
  for (auto& slice : slices) {
    out.cells.insert(out.cells.end(), std::make_move_iterator(slice.begin()),
                     std::make_move_iterator(slice.end()));
  }
  AlignRunToClock(out.cells, target, *options_.tilt_policy,
                  /*pool=*/nullptr, /*stats=*/nullptr);
  std::sort(out.cells.begin(), out.cells.end(), CellSnapshotCanonicalLess);
  return out;
}

std::vector<std::vector<CellKey>> ShardedStreamEngine::MemberKeysForBatch(
    CuboidId cuboid, const std::vector<CellKey>& keys) {
  std::vector<std::vector<CellKey>> members(keys.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (size_t i = 0; i < keys.size(); ++i) {
      shard->engine.AppendMemberKeys(cuboid, keys[i], &members[i]);
    }
  }
  // Canonical order — the order the memoized window (and therefore its
  // H-tree) was built in, which the seeded node indexes rely on.
  for (auto& list : members) {
    std::sort(list.begin(), list.end(), CanonicalKeyLess);
  }
  return members;
}

std::vector<CellKey> ShardedStreamEngine::MemberKeysFor(CuboidId cuboid,
                                                        const CellKey& key) {
  return std::move(MemberKeysForBatch(cuboid, {key}).front());
}

Result<std::vector<MLayerTuple>> ShardedStreamEngine::SnapshotWindow(int level,
                                                                     int k) {
  GatheredCells gathered = GatherAlignedCells();
  RC_RETURN_IF_ERROR(gathered.status);
  return SnapshotWindowOf(*gathered.cells, level, k);
}

Result<RegressionCube> ShardedStreamEngine::ComputeCube(int level, int k) {
  // The by-value export door must not evict a live memo of a different
  // window (a caller alternating a (level, k) export with cube-kind
  // drilling would otherwise force a full rebuild on every call): when
  // the windows disagree, compute from scratch and leave the memo alone.
  if (cube_memo_ == nullptr ||
      cube_memo_->WouldEvictDifferentWindow(level, k)) {
    GatheredCells gathered = GatherAlignedCells();
    RC_RETURN_IF_ERROR(gathered.status);
    return SnapshotCubeOf(schema_, *gathered.cells, options_, level, k,
                          pool_.get());
  }
  auto shared = ComputeCubeShared(level, k);
  if (!shared.ok()) return shared.status();
  return (*shared)->Clone();
}

Result<std::shared_ptr<const RegressionCube>>
ShardedStreamEngine::ComputeCubeShared(int level, int k) {
  GatheredCells gathered = GatherAlignedCells();
  RC_RETURN_IF_ERROR(gathered.status);
  if (cube_memo_ == nullptr) {
    auto cube = SnapshotCubeOf(schema_, *gathered.cells, options_, level, k,
                               pool_.get());
    if (!cube.ok()) return cube.status();
    return std::shared_ptr<const RegressionCube>(
        std::make_shared<RegressionCube>(std::move(*cube)));
  }
  return cube_memo_->CubeFor(gathered.cells, gathered.revision, level, k,
                             pool_.get());
}

IncrementalCubeCache::Stats ShardedStreamEngine::cube_memo_stats() const {
  return cube_memo_ != nullptr ? cube_memo_->stats()
                               : IncrementalCubeCache::Stats{};
}

std::int64_t ShardedStreamEngine::CubeMemoBytes() const {
  return cube_memo_ != nullptr ? cube_memo_->MemoryBytes() : 0;
}

Result<RegressionCube> ShardedStreamEngine::ComputeCubeAllLocks(int level,
                                                                int k) {
  auto locks = LockAll();
  const std::uint64_t before = SumShardRevisionsLocked();
  Status aligned = AlignLocked();
  // The all-locks read force-seals lagging shards (the behavior the
  // snapshot path retired); that mutation must move the global revision or
  // the gather caches would serve pre-seal state as current.
  if (SumShardRevisionsLocked() != before) {
    revision_.fetch_add(1, std::memory_order_release);
  }
  MirrorVersionsLocked();
  RC_RETURN_IF_ERROR(aligned);
  std::int64_t cells = 0;
  for (const auto& shard : shards_) cells += shard->engine.num_cells();
  if (cells == 0) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  std::vector<MLayerTuple> merged;
  merged.reserve(static_cast<size_t>(cells));
  for (auto& shard : shards_) {
    if (shard->engine.num_cells() == 0) continue;
    auto window = shard->engine.SnapshotWindow(level, k);
    if (!window.ok()) return window.status();
    merged.insert(merged.end(), window->begin(), window->end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const MLayerTuple& a, const MLayerTuple& b) {
              return CanonicalKeyLess(a.key, b.key);
            });
  return ComputeCubeFromWindow(schema_, merged, options_, nullptr);
}

Result<ShardedStreamEngine::DeckSeries> ShardedStreamEngine::ObservationDeck(
    int level) {
  GatheredCells gathered = GatherAlignedCells();
  RC_RETURN_IF_ERROR(gathered.status);
  return SnapshotDeckOf(*gathered.cells, lattice_,
                        options_.tilt_policy->num_levels(), level);
}

Result<std::vector<ShardedStreamEngine::TrendChange>>
ShardedStreamEngine::DetectTrendChanges(int level, double threshold) {
  GatheredCells gathered = GatherAlignedCells();
  RC_RETURN_IF_ERROR(gathered.status);
  return SnapshotTrendChangesOf(*gathered.cells, lattice_,
                                options_.tilt_policy->num_levels(), level,
                                threshold);
}

Result<Isb> ShardedStreamEngine::QueryCell(CuboidId cuboid, const CellKey& key,
                                           int level, int k) {
  // Validation precedes the gather; every point-query door shares it.
  RC_RETURN_IF_ERROR(ValidatePointQueryTarget(
      lattice_, cuboid, level, options_.tilt_policy->num_levels()));
  MemberGather gathered = GatherCellsMatching(cuboid, key);
  RC_RETURN_IF_ERROR(gathered.status);
  if (gathered.total_cells == 0) return SnapshotNoDataError();
  if (gathered.cells.empty()) {
    return SnapshotNoMembersError(lattice_, cuboid, key);
  }
  return SnapshotCellOf(gathered.cells, lattice_, cuboid, key, level, k);
}

Result<std::vector<Isb>> ShardedStreamEngine::QueryCellSeries(
    CuboidId cuboid, const CellKey& key, int level) {
  // Validation precedes the gather, in the legacy kernel's order:
  // cuboid, then level, then no-data / no-members.
  RC_RETURN_IF_ERROR(ValidatePointQueryTarget(
      lattice_, cuboid, level, options_.tilt_policy->num_levels()));
  MemberGather gathered = GatherCellsMatching(cuboid, key);
  RC_RETURN_IF_ERROR(gathered.status);
  if (gathered.total_cells == 0) return SnapshotNoDataError();
  if (gathered.cells.empty()) {
    return SnapshotNoMembersError(lattice_, cuboid, key);
  }
  return SnapshotCellSeriesOf(gathered.cells, lattice_,
                              options_.tilt_policy->num_levels(), cuboid, key,
                              level);
}

std::int64_t ShardedStreamEngine::num_cells() const {
  std::int64_t cells = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    cells += shard->engine.num_cells();
  }
  return cells;
}

std::int64_t ShardedStreamEngine::MemoryBytes() const {
  std::int64_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->engine.MemoryBytes();
  }
  return bytes;
}

std::int64_t ShardedStreamEngine::FrozenBytes() const {
  std::int64_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->engine.FrozenBytes();
  }
  return bytes;
}

std::int64_t ShardedStreamEngine::MemberIndexBytes() const {
  std::int64_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->engine.MemberIndexBytes();
  }
  return bytes;
}

Status ShardedStreamEngine::ConfigureStorage(const MemoryBudgetConfig& config) {
  if (config.budget_bytes < 0) {
    return Status::InvalidArgument(
        StrPrintf("memory budget must be >= 0, got %lld",
                  static_cast<long long>(config.budget_bytes)));
  }
  if (config.compact_garbage_ratio <= 0.0) {
    return Status::InvalidArgument(
        StrPrintf("compaction garbage ratio must be > 0, got %g",
                  config.compact_garbage_ratio));
  }
  if (config.compact_min_bytes < 0) {
    return Status::InvalidArgument(
        StrPrintf("compaction min bytes must be >= 0, got %lld",
                  static_cast<long long>(config.compact_min_bytes)));
  }
  budget_config_ = config;
  if (!config.spill_dir.empty()) {
    auto store = FrameStore::Open(config.spill_dir);
    if (!store.ok()) return store.status();
    frame_store_ = std::move(*store);
    frame_store_->set_fault_injector(fault_injector_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> lock(shards_[i]->mu);
      shards_[i]->engine.set_frame_store(frame_store_.get(),
                                         static_cast<int>(i));
    }
  }
  if (config.budget_bytes > 0) {
    governor_ = std::make_unique<MemoryGovernor>(
        config.budget_bytes, [this] { return UsageBytes(); });
    // The typed eviction ladder, cheapest-to-rebuild first. The api layer
    // registers its snapshot cache at priority 19, between the memo and
    // the core gather caches.
    governor_->AddRung(10, "cube.memo",
                       [this](std::int64_t) { return DropCubeMemoRung(); });
    governor_->AddRung(21, "gather.caches", [this](std::int64_t) {
      return DropGatherCachesRung();
    });
    if (frame_store_ != nullptr) {
      governor_->AddRung(30, "frames.spill", [this](std::int64_t excess) {
        return SpillColdFramesRung(excess);
      });
      // The last rung handles the all-dirty overshoot: cold spill only
      // takes clean cells, so a hot-everywhere stream can leave rung 30
      // with nothing to do. An internal export turns the dirty cells
      // clean, then the spill sweep re-runs — the ladder converges
      // instead of stalling one rung short of its only real lever.
      governor_->AddRung(40, "export.dirty", [this](std::int64_t excess) {
        return ExportDirtyRung(excess);
      });
    }
  }
  return Status::OK();
}

void ShardedStreamEngine::MaybeEnforceBudget() {
  // Never re-enter the governor from inside one of its own rungs: the
  // try_lock on a mutex this thread already holds would be UB.
  if (tl_in_budget_rung) return;
  if (governor_ == nullptr) return;
  governor_->MaybeEnforce();
  // Compaction rides the enforcement heartbeat, sampled so the per-call
  // cost stays one relaxed fetch_add: garbage accrues a block at a time,
  // so a ~256-call probe period bounds staleness without a new thread.
  if (frame_store_ != nullptr &&
      (enforce_calls_.fetch_add(1, std::memory_order_relaxed) & 0xFF) == 0) {
    MaybeCompactSegments();
  }
}

void ShardedStreamEngine::MaybeCompactSegments() {
  if (frame_store_ == nullptr) return;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const int shard = static_cast<int>(i);
    if (!frame_store_->ShouldCompact(shard,
                                     budget_config_.compact_garbage_ratio,
                                     budget_config_.compact_min_bytes)) {
      continue;
    }
    // The shard lock spans the rewrite *and* the re-pointing: a reader on
    // this shard either sees the old refs before the swap or the new refs
    // after — never a ref into a retired segment.
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    auto relocations = frame_store_->CompactShardSegment(shard);
    if (!relocations.ok()) continue;  // counted in CompactionStats.failures
    shards_[i]->engine.RepointSpilledBlocks(*relocations);
  }
}

void ShardedStreamEngine::set_fault_injector(FaultInjector* injector) {
  fault_injector_ = injector;
  if (frame_store_ != nullptr) frame_store_->set_fault_injector(injector);
}

std::int64_t ShardedStreamEngine::ExportDirtyRung(std::int64_t excess) {
  // Deliberately NOT a gather: rung 21 just dropped the cached run, so a
  // gather here would be a full export that faults every spilled cell
  // back in — undoing rung 30's work while claiming to help. Cleaning
  // the dirty queues touches only resident cells and costs no I/O.
  ScopedFlag in_rung(tl_in_budget_rung);
  std::int64_t cleaned = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    cleaned += shard->engine.CleanDirtyCells();
  }
  if (cleaned == 0) return 0;  // nothing was dirty; rung 30 said it all
  // The newly-clean cells are spillable; sweep them out now rather than
  // waiting for the next enforcement to notice.
  return SpillColdFramesRung(excess);
}

std::int64_t ShardedStreamEngine::UsageBytes() const {
  if (tracker_ != nullptr) return tracker_->current_bytes();
  return MemoryBytes() + FrozenBytes() + MemberIndexBytes() +
         CubeMemoBytes() + IngestQueueBytes();
}

std::int64_t ShardedStreamEngine::DropCubeMemoRung() {
  if (cube_memo_ == nullptr) return 0;
  const std::int64_t bytes = cube_memo_->MemoryBytes();
  cube_memo_->Invalidate();
  return bytes;
}

std::int64_t ShardedStreamEngine::DropGatherCachesRung() {
  std::int64_t freed = 0;
  {
    // Dropping the cached run is safe against an in-flight delta gather:
    // the builder snapshotted its base earlier and installs its result
    // unconditionally (re-registering tracker bytes), so the only effect
    // here is that the *next* gather starts from a full export.
    std::lock_guard<std::mutex> lock(gather_mu_);
    if (gather_valid_) {
      const std::int64_t bytes = SliceBytes(*gather_cache_.cells);
      if (tracker_ != nullptr && bytes > 0) {
        tracker_->Release(kGatherCacheCategory, bytes);
      }
      freed += bytes;
      gather_cache_ = GatheredCells{};  // drops the run's shared_ptr
      gather_valid_ = false;
    }
  }
  // Retire each shard's published generation too: the per-cell frozen
  // blocks are only truly freed once no retained run shares them — which
  // the drops above and below arrange. Readers that arrive before the
  // next publish pay one locked full refreeze (the eviction trade).
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->published.store(nullptr, std::memory_order_release);
    freed += shard->engine.DropPublishedRun();
    freed += shard->engine.DropFrozenBlocks();
  }
  return freed;
}

std::int64_t ShardedStreamEngine::SpillColdFramesRung(std::int64_t excess) {
  const size_t n = shards_.size();
  std::vector<std::int64_t> resident(n, 0);
  std::int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    resident[i] = shards_[i]->engine.MemoryBytes();
    total += resident[i];
  }
  if (total <= 0 || excess <= 0) return 0;
  std::int64_t freed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (resident[i] <= 0) continue;
    // Each shard spills its proportional share, rounded up so a small
    // excess still makes progress somewhere.
    const std::int64_t target = (excess * resident[i] + total - 1) / total;
    if (target <= 0) continue;
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    freed += shards_[i]->engine.SpillColdFrames(target).bytes;
  }
  return freed;
}

regcube::SpillStats ShardedStreamEngine::SpillStats() const {
  regcube::SpillStats out;
  out.budget_bytes = budget_config_.budget_bytes;
  if (governor_ != nullptr) {
    const MemoryGovernor::Stats g = governor_->stats();
    out.enforcements = g.enforcements;
    for (const auto& rung : g.rungs) {
      out.evicted_bytes += rung.reclaimed_bytes;
      if (rung.name == "cube.memo") {
        out.memo_evictions += rung.invocations;
      } else if (rung.name == "frames.spill") {
        out.spill_evictions += rung.invocations;
      } else if (rung.name == "export.dirty") {
        out.export_evictions += rung.invocations;
      } else {
        out.cache_evictions += rung.invocations;
      }
    }
  }
  out.budget_rejects = budget_rejects_.load(std::memory_order_relaxed);
  if (frame_store_ != nullptr) {
    const FrameStoreStats s = frame_store_->Stats();
    out.spilled_blocks = s.spilled_blocks;
    out.spilled_bytes = s.spilled_bytes;
    out.fault_ins = s.fault_ins;
    out.fault_in_bytes = s.fault_in_bytes;
    out.fault_in_p99_us = s.fault_in_p99_us;
    out.disk_bytes = s.disk_bytes;
    out.live_bytes = s.live_bytes;
    out.garbage_bytes = s.garbage_bytes;
    const CompactionStats c = frame_store_->Compactions();
    out.compactions = c.compactions;
    out.compacted_bytes = c.compacted_bytes;
    out.reclaimed_bytes = c.reclaimed_bytes;
    out.compaction_failures = c.failures;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.spilled_cells += shard->engine.SpilledCells();
    out.io_errors += shard->engine.SpillIoErrors();
    out.retries += shard->engine.SpillRetries();
  }
  return out;
}

Status ShardedStreamEngine::CheckpointTo(const std::string& dir) {
  // Queued tuples must land before the cut (async mode); then every shard
  // lock is held so the files describe one consistent instant.
  RC_RETURN_IF_ERROR(Flush());
  RC_RETURN_IF_ERROR(EnsureDirectory(dir));
  auto locks = LockAll();
  const size_t n = shards_.size();
  std::vector<Status> statuses(n);
  std::vector<std::int64_t> counts(n, 0);
  auto write_one = [&](std::int64_t idx) {
    const size_t i = static_cast<size_t>(idx);
    std::vector<std::pair<CellKey, std::string>> cells;
    Status s = shards_[i]->engine.ExportEncodedFrames(&cells);
    if (s.ok()) {
      counts[i] = static_cast<std::int64_t>(cells.size());
      s = WriteFile(CheckpointShardFilePath(dir, static_cast<int>(i)),
                    EncodeCheckpointShardFile(static_cast<int>(i), cells));
    }
    statuses[i] = std::move(s);
  };
  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(static_cast<std::int64_t>(n), write_one);
  } else {
    for (size_t i = 0; i < n; ++i) write_one(static_cast<std::int64_t>(i));
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  CheckpointManifest manifest;
  manifest.num_shard_files = num_shards();
  manifest.num_dims = schema_->num_dims();
  manifest.num_levels = options_.tilt_policy->num_levels();
  manifest.start_tick = options_.start_tick;
  TimeTick clock = clock_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    clock = std::max(clock, shard->engine.now());
  }
  manifest.clock = clock;
  for (std::int64_t c : counts) manifest.num_cells += c;
  // The manifest is the commit point: written (atomically) last, so a
  // directory with a valid manifest always has complete shard files.
  return WriteFile(CheckpointManifestPath(dir),
                   EncodeCheckpointManifest(manifest));
}

Status ShardedStreamEngine::RestoreFrom(const std::string& dir) {
  if (num_cells() != 0) {
    return Status::FailedPrecondition(
        "RestoreFrom requires a freshly built, empty engine");
  }
  auto manifest_data = ReadFile(CheckpointManifestPath(dir));
  if (!manifest_data.ok()) return manifest_data.status();
  auto manifest = DecodeCheckpointManifest(*manifest_data);
  if (!manifest.ok()) return manifest.status();
  if (manifest->num_dims != schema_->num_dims()) {
    return Status::InvalidArgument(
        StrPrintf("checkpoint was written with %d dims, schema has %d",
                  manifest->num_dims, schema_->num_dims()));
  }
  if (manifest->num_levels != options_.tilt_policy->num_levels()) {
    return Status::InvalidArgument(StrPrintf(
        "checkpoint was written with %d tilt levels, policy has %d",
        manifest->num_levels, options_.tilt_policy->num_levels()));
  }
  if (manifest->start_tick != options_.start_tick) {
    return Status::InvalidArgument(StrPrintf(
        "checkpoint starts at tick %lld, engine at %lld (OpenFrom sets "
        "this automatically)",
        static_cast<long long>(manifest->start_tick),
        static_cast<long long>(options_.start_tick)));
  }
  if (frame_store_ == nullptr) {
    // No spill dir configured: an attach-only store maps the checkpoint
    // files; later evictions just stop at the cache rungs.
    auto store = FrameStore::Open("");
    if (!store.ok()) return store.status();
    frame_store_ = std::move(*store);
    frame_store_->set_fault_injector(fault_injector_);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    shards_[i]->engine.set_frame_store(frame_store_.get(),
                                       static_cast<int>(i));
  }
  // Cells are re-routed by the *current* shard hash — the checkpoint's
  // shard count is just its file layout, not a constraint on ours.
  std::int64_t restored = 0;
  for (std::int32_t f = 0; f < manifest->num_shard_files; ++f) {
    auto entries =
        frame_store_->AttachCheckpointFile(CheckpointShardFilePath(dir, f));
    if (!entries.ok()) return entries.status();
    for (const auto& entry : *entries) {
      Shard& shard = *shards_[static_cast<size_t>(ShardIndex(entry.key))];
      std::lock_guard<std::mutex> lock(shard.mu);
      RC_RETURN_IF_ERROR(shard.engine.RestoreCell(entry.key, entry.ref));
      ++restored;
    }
  }
  if (restored != manifest->num_cells) {
    return Status::InvalidArgument(
        StrPrintf("checkpoint manifest promises %lld cells, files held %lld",
                  static_cast<long long>(manifest->num_cells),
                  static_cast<long long>(restored)));
  }
  BumpClock(manifest->clock);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->engine.RestoreClock(manifest->clock);
    shard->version.store(shard->engine.revision(), std::memory_order_release);
  }
  revision_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

}  // namespace regcube
