#include "regcube/core/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/regression/aggregate.h"

namespace regcube {
namespace {

/// Canonical total order on cell keys: merged rows are always reduced in
/// this order, which is what makes results shard-count invariant.
bool KeyLess(const CellKey& a, const CellKey& b) {
  if (a.num_dims() != b.num_dims()) return a.num_dims() < b.num_dims();
  for (int d = 0; d < a.num_dims(); ++d) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return false;
}

}  // namespace

ShardedStreamEngine::ShardedStreamEngine(
    std::shared_ptr<const CubeSchema> schema, Options options, int num_shards)
    : schema_(std::move(schema)),
      lattice_(*schema_),
      options_(std::move(options)),
      mapper_(std::move(options_.key_mapper)),
      clock_(options_.start_tick) {
  RC_CHECK(schema_ != nullptr);
  RC_CHECK(options_.tilt_policy != nullptr);
  RC_CHECK(num_shards >= 1) << "num_shards must be >= 1, got " << num_shards;
  options_.key_mapper = nullptr;  // applied here, before shard hashing
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(schema_, options_));
  }
}

int ShardedStreamEngine::ShardIndex(const CellKey& mapped_key) const {
  return static_cast<int>(mapped_key.Hash() % shards_.size());
}

void ShardedStreamEngine::BumpClock(TimeTick t) {
  TimeTick cur = clock_.load(std::memory_order_relaxed);
  while (cur < t &&
         !clock_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
  }
}

Status ShardedStreamEngine::Ingest(const StreamTuple& tuple) {
  const CellKey key = mapper_ ? mapper_(tuple.key) : tuple.key;
  Shard& shard = *shards_[static_cast<size_t>(ShardIndex(key))];
  Status status;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    status = shard.engine.Ingest({key, tuple.tick, tuple.value});
  }
  if (status.ok()) {
    BumpClock(tuple.tick);
  }
  // A rejected tuple can still have created the cell's frame; move the
  // revision unconditionally so cube caches never serve stale state.
  revision_.fetch_add(1, std::memory_order_release);
  return status;
}

Status ShardedStreamEngine::IngestBatch(const std::vector<StreamTuple>& tuples) {
  std::vector<std::vector<StreamTuple>> partitions(shards_.size());
  TimeTick max_tick = clock_.load(std::memory_order_relaxed);
  for (const StreamTuple& t : tuples) {
    const CellKey key = mapper_ ? mapper_(t.key) : t.key;
    partitions[static_cast<size_t>(ShardIndex(key))].push_back(
        {key, t.tick, t.value});
    max_tick = std::max(max_tick, t.tick);
  }
  Status status;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (partitions[i].empty()) continue;
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    status = shard.engine.IngestBatch(partitions[i]);
    if (!status.ok()) break;
  }
  if (status.ok()) {
    BumpClock(max_tick);
  }
  // Earlier shards keep their prefix even on error, so the state changed
  // either way: the revision must move or cube caches go stale. (The clock
  // self-corrects in AlignLocked, which maxes over shard clocks.)
  revision_.fetch_add(1, std::memory_order_release);
  return status;
}

std::vector<std::unique_lock<std::mutex>> ShardedStreamEngine::LockAll()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  return locks;
}

Status ShardedStreamEngine::AlignLocked() {
  // The global clock must dominate every shard's local view before the
  // shards are driven to it (a writer may have raced ahead of clock_).
  TimeTick target = clock_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    target = std::max(target, shard->engine.now());
  }
  BumpClock(target);
  for (auto& shard : shards_) {
    if (shard->engine.now() < target) {
      RC_RETURN_IF_ERROR(shard->engine.SealThrough(target - 1));
    }
  }
  return Status::OK();
}

Status ShardedStreamEngine::SealThrough(TimeTick t) {
  auto locks = LockAll();
  BumpClock(t + 1);
  RC_RETURN_IF_ERROR(AlignLocked());
  revision_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Result<std::vector<MLayerTuple>> ShardedStreamEngine::SnapshotWindow(int level,
                                                                     int k) {
  auto locks = LockAll();
  RC_RETURN_IF_ERROR(AlignLocked());
  std::int64_t cells = 0;
  for (const auto& shard : shards_) cells += shard->engine.num_cells();
  if (cells == 0) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  std::vector<MLayerTuple> merged;
  merged.reserve(static_cast<size_t>(cells));
  for (auto& shard : shards_) {
    if (shard->engine.num_cells() == 0) continue;
    auto window = shard->engine.SnapshotWindow(level, k);
    if (!window.ok()) return window.status();
    merged.insert(merged.end(), window->begin(), window->end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const MLayerTuple& a, const MLayerTuple& b) {
              return KeyLess(a.key, b.key);
            });
  return merged;
}

Result<RegressionCube> ShardedStreamEngine::ComputeCube(int level, int k) {
  auto tuples = SnapshotWindow(level, k);
  if (!tuples.ok()) return tuples.status();
  return ComputeCubeFromWindow(schema_, *tuples, options_);
}

Result<std::vector<StreamCubeEngine::MLayerSeries>>
ShardedStreamEngine::MergedSeriesLocked(int level) {
  if (level < 0 || level >= options_.tilt_policy->num_levels()) {
    return Status::InvalidArgument(
        StrPrintf("tilt level %d outside [0, %d)", level,
                  options_.tilt_policy->num_levels()));
  }
  std::vector<StreamCubeEngine::MLayerSeries> merged;
  for (auto& shard : shards_) {
    auto rows = shard->engine.SnapshotSeries(level);
    merged.insert(merged.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  if (merged.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  std::sort(merged.begin(), merged.end(),
            [](const StreamCubeEngine::MLayerSeries& a,
               const StreamCubeEngine::MLayerSeries& b) {
              return KeyLess(a.key, b.key);
            });
  return merged;
}

Result<ShardedStreamEngine::DeckSeries> ShardedStreamEngine::ObservationDeck(
    int level) {
  auto locks = LockAll();
  RC_RETURN_IF_ERROR(AlignLocked());
  auto rows = MergedSeriesLocked(level);
  if (!rows.ok()) return rows.status();
  DeckSeries deck;
  const CuboidId o_id = lattice_.o_layer_id();
  for (const auto& row : *rows) {
    const CellKey o_key = lattice_.ProjectMLayerKey(row.key, o_id);
    auto& dest = deck[o_key];
    if (dest.size() < row.slots.size()) dest.resize(row.slots.size());
    for (size_t i = 0; i < row.slots.size(); ++i) {
      AccumulateStandardDim(dest[i], row.slots[i]);
    }
  }
  return deck;
}

Result<std::vector<ShardedStreamEngine::TrendChange>>
ShardedStreamEngine::DetectTrendChanges(int level, double threshold) {
  auto deck = ObservationDeck(level);
  if (!deck.ok()) return deck.status();
  std::vector<TrendChange> changes;
  for (const auto& [key, series] : *deck) {
    if (series.size() < 2) continue;
    const Isb& prev = series[series.size() - 2];
    const Isb& cur = series[series.size() - 1];
    const double delta = std::abs(cur.slope - prev.slope);
    if (delta >= threshold) {
      changes.push_back(TrendChange{key, prev, cur, delta});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const TrendChange& a, const TrendChange& b) {
              if (a.slope_delta != b.slope_delta) {
                return a.slope_delta > b.slope_delta;
              }
              return KeyLess(a.key, b.key);  // deterministic tie order
            });
  return changes;
}

Result<std::vector<std::pair<CellKey, ShardedStreamEngine::Shard*>>>
ShardedStreamEngine::MemberCellsLocked(CuboidId cuboid, const CellKey& key) {
  std::vector<std::pair<CellKey, Shard*>> members;
  bool any_cells = false;
  for (auto& shard : shards_) {
    for (const CellKey& m_key : shard->engine.MLayerKeys()) {
      any_cells = true;
      if (lattice_.ProjectMLayerKey(m_key, cuboid) == key) {
        members.emplace_back(m_key, shard.get());
      }
    }
  }
  if (!any_cells) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  if (members.empty()) {
    return Status::NotFound(
        StrPrintf("no m-layer cell rolls up into %s of cuboid %s",
                  key.ToString().c_str(),
                  lattice_.CuboidName(cuboid).c_str()));
  }
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) {
              return KeyLess(a.first, b.first);
            });
  return members;
}

Result<Isb> ShardedStreamEngine::QueryCell(CuboidId cuboid, const CellKey& key,
                                           int level, int k) {
  if (cuboid < 0 || cuboid >= lattice_.num_cuboids()) {
    return Status::InvalidArgument(
        StrPrintf("cuboid id %d outside the lattice", cuboid));
  }
  auto locks = LockAll();
  RC_RETURN_IF_ERROR(AlignLocked());
  auto members = MemberCellsLocked(cuboid, key);
  if (!members.ok()) return members.status();
  Isb acc;
  for (auto& [m_key, shard] : *members) {
    auto isb = shard->engine.RegressMLayerCell(m_key, level, k);
    if (!isb.ok()) return isb.status();
    AccumulateStandardDim(acc, *isb);
  }
  return acc;
}

Result<std::vector<Isb>> ShardedStreamEngine::QueryCellSeries(
    CuboidId cuboid, const CellKey& key, int level) {
  if (cuboid < 0 || cuboid >= lattice_.num_cuboids()) {
    return Status::InvalidArgument(
        StrPrintf("cuboid id %d outside the lattice", cuboid));
  }
  if (level < 0 || level >= options_.tilt_policy->num_levels()) {
    return Status::InvalidArgument(
        StrPrintf("tilt level %d outside [0, %d)", level,
                  options_.tilt_policy->num_levels()));
  }
  auto locks = LockAll();
  RC_RETURN_IF_ERROR(AlignLocked());
  auto members = MemberCellsLocked(cuboid, key);
  if (!members.ok()) return members.status();
  std::vector<Isb> acc;
  for (auto& [m_key, shard] : *members) {
    auto slots = shard->engine.MLayerCellSeries(m_key, level);
    if (!slots.ok()) return slots.status();
    if (acc.size() < slots->size()) acc.resize(slots->size());
    for (size_t i = 0; i < slots->size(); ++i) {
      AccumulateStandardDim(acc[i], (*slots)[i]);
    }
  }
  return acc;
}

std::int64_t ShardedStreamEngine::num_cells() const {
  auto locks = LockAll();
  std::int64_t cells = 0;
  for (const auto& shard : shards_) cells += shard->engine.num_cells();
  return cells;
}

std::int64_t ShardedStreamEngine::MemoryBytes() const {
  auto locks = LockAll();
  std::int64_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->engine.MemoryBytes();
  return bytes;
}

}  // namespace regcube
