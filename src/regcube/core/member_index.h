#ifndef REGCUBE_CORE_MEMBER_INDEX_H_
#define REGCUBE_CORE_MEMBER_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "regcube/cube/cell.h"
#include "regcube/cube/cuboid.h"
#include "regcube/cube/packed_key.h"

namespace regcube {

/// How a point lookup locates the member m-layer cells of a cuboid cell.
/// kIndexed probes the ingest-maintained roll-up index (O(matching
/// members)); kScan projects every cell's key (the O(cells) pre-index
/// path, retained as the oracle for bit-identity tests and benches).
enum class PointLookup { kIndexed, kScan };

/// The per-shard, per-cuboid roll-up index behind sublinear point queries:
/// for each cuboid of the lattice, a hash map from projected cell key to
/// the ids of the m-layer cells that roll up into it. Membership is a pure
/// function of the cell *keys* (frames never move a cell between cuboid
/// cells, and cells are never erased), so the index is maintained with one
/// append per (new cell, active cuboid) at ingest time and never needs
/// per-write invalidation: revision coherence comes from resolving member
/// ids back through the owning engine's live cell states, whose frozen
/// blocks are refreshed per-cell against the same dirty bookkeeping every
/// gather uses.
///
/// Cuboid maps activate lazily: the first point query of a cuboid pays one
/// O(cells) projection pass (under the shard lock), after which every
/// probe is O(matching members) and ingest keeps the map current. Cuboids
/// never probed cost nothing. Note the cube memo's patch seeding is also a
/// prober: a small (trickle-gated) patch activates the maps of the cuboids
/// it seeds, trading O(activated cuboids × cells) accounted bytes — the
/// same shape of spend as the memo's own indexes — for never re-scanning
/// chains; bulk patches skip the lookup entirely and leave inactive
/// cuboids alone.
///
/// When the schema's packed-key codec holds, each cuboid map keys its
/// entries by the 64-bit packed projection instead of the CellKey (half
/// the key bytes, cheap hashing). A map that ever meets a key it cannot
/// pack (out-of-cardinality values from a key mapper) demotes itself to
/// the CellKey representation once — member lists and their order carry
/// over untouched, so probes see no difference.
///
/// Not thread-safe; the owning StreamCubeEngine is single-threaded behind
/// its shard mutex, like every other engine structure.
class MemberIndex {
 public:
  /// Dense per-shard cell id: position in the engine's creation-order cell
  /// list. Cells are never erased, so ids are stable for the engine's
  /// lifetime.
  using MemberId = std::uint32_t;

  /// `lattice` is not owned and must outlive the index.
  explicit MemberIndex(const CuboidLattice* lattice);

  /// True iff `cuboid`'s roll-up map has been built.
  bool active(CuboidId cuboid) const {
    return maps_[static_cast<size_t>(cuboid)].has_value();
  }

  /// Creates `cuboid`'s (empty) map; the caller folds the existing cell
  /// population in via AddCellTo. No-op if already active.
  void Activate(CuboidId cuboid);

  /// Folds a newly created cell into every active cuboid map — the ingest
  /// half of maintenance, O(active cuboids) per new cell (zero-cost while
  /// nothing is active: only the active id list is walked).
  void AddCell(const CellKey& m_key, MemberId id);

  /// Folds one cell into one (active) cuboid map — the activation
  /// backfill.
  void AddCellTo(CuboidId cuboid, const CellKey& m_key, MemberId id);

  /// Member ids rolling up into `key` of `cuboid`, in cell-creation order;
  /// nullptr when no member matches. Pre: active(cuboid).
  const std::vector<MemberId>* MembersOf(CuboidId cuboid,
                                         const CellKey& key) const;

  /// Analytic footprint (maps + entries + member ids), maintained
  /// incrementally — the "index.members" figure.
  std::int64_t MemoryBytes() const { return bytes_; }

 private:
  struct CuboidMap {
    bool packed = false;  // which representation is live
    std::unordered_map<std::uint64_t, std::vector<MemberId>> by_packed;
    std::unordered_map<CellKey, std::vector<MemberId>, CellKeyHash> by_key;
  };

  void Fold(CuboidId cuboid, CuboidMap& map, const CellKey& m_key,
            MemberId id);
  void Demote(CuboidMap& map);

  const CuboidLattice* lattice_;
  std::optional<PackedKeyCodec> codec_;
  std::vector<std::optional<CuboidMap>> maps_;  // by cuboid id
  std::vector<CuboidId> active_;  // cuboids with a map, in activation order
  std::int64_t bytes_ = 0;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_MEMBER_INDEX_H_
