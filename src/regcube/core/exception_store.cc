#include "regcube/core/exception_store.h"

#include "regcube/common/str.h"

namespace regcube {

void ExceptionStore::Insert(CuboidId cuboid, const CellKey& key,
                            const Isb& isb) {
  CellMap& cells = by_cuboid_[cuboid];
  auto [it, inserted] = cells.emplace(key, isb);
  if (inserted) {
    ++total_cells_;
  } else {
    it->second = isb;
  }
}

void ExceptionStore::InsertAll(CuboidId cuboid, const CellMap& cells) {
  for (const auto& [key, isb] : cells) Insert(cuboid, key, isb);
}

void ExceptionStore::Adopt(CuboidId cuboid, CellMap&& cells) {
  if (cells.empty()) return;
  auto [it, inserted] = by_cuboid_.try_emplace(cuboid, std::move(cells));
  if (inserted) {
    total_cells_ += static_cast<std::int64_t>(it->second.size());
    return;
  }
  InsertAll(cuboid, cells);
}

void ExceptionStore::Erase(CuboidId cuboid, const CellKey& key) {
  auto it = by_cuboid_.find(cuboid);
  if (it == by_cuboid_.end()) return;
  if (it->second.erase(key) > 0) --total_cells_;
  if (it->second.empty()) by_cuboid_.erase(it);
}

bool ExceptionStore::Contains(CuboidId cuboid, const CellKey& key) const {
  auto it = by_cuboid_.find(cuboid);
  return it != by_cuboid_.end() && it->second.count(key) > 0;
}

const CellMap* ExceptionStore::CellsOf(CuboidId cuboid) const {
  auto it = by_cuboid_.find(cuboid);
  return it == by_cuboid_.end() ? nullptr : &it->second;
}

std::vector<CuboidId> ExceptionStore::Cuboids() const {
  std::vector<CuboidId> out;
  out.reserve(by_cuboid_.size());
  for (const auto& [cuboid, cells] : by_cuboid_) {
    if (!cells.empty()) out.push_back(cuboid);
  }
  return out;
}

std::int64_t ExceptionStore::MemoryBytes() const {
  std::int64_t bytes = 0;
  for (const auto& [cuboid, cells] : by_cuboid_) {
    bytes += CellMapMemoryBytes(cells);
  }
  return bytes;
}

std::string ExceptionStore::ToString() const {
  return StrPrintf("ExceptionStore(%lld cells across %zu cuboids)",
                   static_cast<long long>(total_cells_), by_cuboid_.size());
}

}  // namespace regcube
