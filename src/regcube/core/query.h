#ifndef REGCUBE_CORE_QUERY_H_
#define REGCUBE_CORE_QUERY_H_

#include <string>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/core/regression_cube.h"
#include "regcube/cube/exception_policy.h"

namespace regcube {

/// A cell surfaced by a query, with enough context to display or drill.
struct CellResult {
  CuboidId cuboid = -1;
  CellKey key;
  Isb isb;
  bool is_exception = false;
};

/// Human-readable rendering of a cell against any schema/lattice pair
/// ("[web, 10.3/16] slope=+1.23456 base=0.5 (EXCEPTION)"). Shared by
/// CubeView::RenderCell and the facade's Engine::RenderCell, which has no
/// materialized cube at hand.
std::string RenderCellWith(const CubeSchema& schema,
                           const CuboidLattice& lattice,
                           const CellResult& cell);

/// Read-side API over a computed RegressionCube: point lookups, exception
/// listings, and the exception-guided drill-down of Framework 4.1 ("drill
/// on the exception cells down to lower layers to find their corresponding
/// exception supporters").
class CubeView {
 public:
  /// `cube` must outlive the view.
  CubeView(const RegressionCube& cube, const ExceptionPolicy& policy);

  /// Looks up a retained cell (m-layer, o-layer, or a stored exception).
  /// NotFound if the cell was not retained.
  Result<Isb> GetCell(CuboidId cuboid, const CellKey& key) const;

  /// Computes any cell on the fly from the retained m-layer by direct
  /// aggregation (for cells pruned as non-exceptions). O(|m-layer|).
  Result<Isb> ComputeCellOnTheFly(CuboidId cuboid, const CellKey& key) const;

  /// All retained exception cells of one cuboid.
  std::vector<CellResult> ExceptionsAt(CuboidId cuboid) const;

  /// Retained exception children of `key` one drill step below `cuboid`
  /// (the next layer of "supporters"). The m-layer counts as computed, so
  /// drilling from the last intermediate layer surfaces exceptional m-cells.
  std::vector<CellResult> DrillDown(CuboidId cuboid, const CellKey& key) const;

  /// Full supporters tree: recursively drills from `key` and returns every
  /// reachable retained exception descendant, in BFS order.
  std::vector<CellResult> ExceptionSupporters(CuboidId cuboid,
                                              const CellKey& key) const;

  /// The strongest `n` retained exception cells by |slope| across all
  /// intermediate cuboids.
  std::vector<CellResult> TopExceptions(std::size_t n) const;

  /// Human-readable rendering of a cell, using dimension level names.
  std::string RenderCell(const CellResult& cell) const;

 private:
  bool IsExceptionCell(CuboidId cuboid, const CellKey& key,
                       const Isb& isb) const;

  const RegressionCube* cube_;
  const ExceptionPolicy* policy_;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_QUERY_H_
