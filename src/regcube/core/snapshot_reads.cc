#include "regcube/core/snapshot_reads.h"

#include <algorithm>
#include <cmath>

#include "regcube/common/str.h"
#include "regcube/cube/packed_key.h"
#include "regcube/regression/aggregate.h"

namespace regcube {

Status SnapshotBadCuboidError(CuboidId cuboid) {
  return Status::InvalidArgument(
      StrPrintf("cuboid id %d outside the lattice", cuboid));
}

Status SnapshotNoDataError() {
  return Status::FailedPrecondition("no stream data ingested yet");
}

Status SnapshotBadLevelError(int level, int num_levels) {
  return Status::InvalidArgument(
      StrPrintf("tilt level %d outside [0, %d)", level, num_levels));
}

Status SnapshotNoMembersError(const CuboidLattice& lattice, CuboidId cuboid,
                              const CellKey& key) {
  return Status::NotFound(
      StrPrintf("no m-layer cell rolls up into %s of cuboid %s",
                key.ToString().c_str(), lattice.CuboidName(cuboid).c_str()));
}

Status ValidatePointQueryTarget(const CuboidLattice& lattice, CuboidId cuboid,
                                int level, int num_levels) {
  if (cuboid < 0 || cuboid >= lattice.num_cuboids()) {
    return SnapshotBadCuboidError(cuboid);
  }
  if (level < 0 || level >= num_levels) {
    return SnapshotBadLevelError(level, num_levels);
  }
  return Status::OK();
}

bool CanonicalKeyLess(const CellKey& a, const CellKey& b) {
  if (a.num_dims() != b.num_dims()) return a.num_dims() < b.num_dims();
  for (int d = 0; d < a.num_dims(); ++d) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return false;
}

Result<std::vector<MLayerTuple>> SnapshotWindowOf(const SnapshotCells& cells,
                                                  int level, int k) {
  if (cells.empty()) return SnapshotNoDataError();
  std::vector<MLayerTuple> merged;
  merged.reserve(cells.size());
  for (const CellSnapshot& cell : cells) {
    auto isb = cell.frame->RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    merged.push_back(MLayerTuple{cell.key, *isb});
  }
  return merged;
}

Result<StreamCubeEngine::DeckSeries> SnapshotDeckOf(
    const SnapshotCells& cells, const CuboidLattice& lattice, int num_levels,
    int level) {
  if (level < 0 || level >= num_levels) return SnapshotBadLevelError(level, num_levels);
  if (cells.empty()) return SnapshotNoDataError();
  StreamCubeEngine::DeckSeries deck;
  const CuboidId o_id = lattice.o_layer_id();
  // Accumulate under the 64-bit packed projection while keys pack (one
  // word hashed and compared per cell instead of a CellKey). Accumulation
  // per o-cell follows the cells scan order either way, so the series are
  // bitwise those of the CellKey loop; on the first unpackable key the
  // partial series move into the CellKey deck and the scan resumes there.
  size_t next = 0;
  const auto codec = PackedKeyCodec::ForSchema(lattice.schema());
  if (codec.has_value()) {
    std::unordered_map<std::uint64_t, std::vector<Isb>> packed_deck;
    for (; next < cells.size(); ++next) {
      const CellSnapshot& cell = cells[next];
      const CellKey o_key = lattice.ProjectMLayerKey(cell.key, o_id);
      std::uint64_t packed = 0;
      if (!codec->Pack(o_key, &packed)) break;
      const auto& slots = cell.frame->RawSlots(level);
      auto& dest = packed_deck[packed];
      if (dest.size() < slots.size()) dest.resize(slots.size());
      for (size_t i = 0; i < slots.size(); ++i) {
        AccumulateStandardDim(dest[i], FitFromMoments(slots[i]));
      }
    }
    deck.reserve(packed_deck.size());
    for (auto& [packed, series] : packed_deck) {
      deck.emplace(codec->Unpack(packed), std::move(series));
    }
  }
  for (; next < cells.size(); ++next) {
    const CellSnapshot& cell = cells[next];
    const CellKey o_key = lattice.ProjectMLayerKey(cell.key, o_id);
    const auto& slots = cell.frame->RawSlots(level);
    auto& dest = deck[o_key];
    if (dest.size() < slots.size()) dest.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      AccumulateStandardDim(dest[i], FitFromMoments(slots[i]));
    }
  }
  return deck;
}

Result<std::vector<StreamCubeEngine::TrendChange>> SnapshotTrendChangesOf(
    const SnapshotCells& cells, const CuboidLattice& lattice, int num_levels,
    int level, double threshold) {
  auto deck = SnapshotDeckOf(cells, lattice, num_levels, level);
  if (!deck.ok()) return deck.status();
  std::vector<StreamCubeEngine::TrendChange> changes;
  for (const auto& [key, series] : *deck) {
    if (series.size() < 2) continue;
    const Isb& prev = series[series.size() - 2];
    const Isb& cur = series[series.size() - 1];
    const double delta = std::abs(cur.slope - prev.slope);
    if (delta >= threshold) {
      changes.push_back(StreamCubeEngine::TrendChange{key, prev, cur, delta});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const StreamCubeEngine::TrendChange& a,
               const StreamCubeEngine::TrendChange& b) {
              if (a.slope_delta != b.slope_delta) {
                return a.slope_delta > b.slope_delta;
              }
              return CanonicalKeyLess(a.key, b.key);  // deterministic ties
            });
  return changes;
}

Result<Isb> SnapshotCellOf(const SnapshotCells& cells,
                           const CuboidLattice& lattice, CuboidId cuboid,
                           const CellKey& key, int level, int k) {
  if (cuboid < 0 || cuboid >= lattice.num_cuboids()) {
    return SnapshotBadCuboidError(cuboid);
  }
  if (cells.empty()) return SnapshotNoDataError();
  // Compare packed projections against the packed target when both sides
  // pack: one word per cell instead of a CellKey compare. Equal keys pack
  // identically, and an unpackable projection cannot equal a packed
  // target, so the filter is exact.
  const auto codec = PackedKeyCodec::ForSchema(lattice.schema());
  std::uint64_t target = 0;
  const bool packed_scan = codec.has_value() && codec->Pack(key, &target);
  auto matches = [&](const CellKey& m_key) {
    const CellKey projected = lattice.ProjectMLayerKey(m_key, cuboid);
    if (packed_scan) {
      std::uint64_t packed = 0;
      return codec->Pack(projected, &packed) && packed == target;
    }
    return projected == key;
  };
  Isb acc;
  bool found = false;
  for (const CellSnapshot& cell : cells) {
    if (!matches(cell.key)) continue;
    auto isb = cell.frame->RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    AccumulateStandardDim(acc, *isb);
    found = true;
  }
  if (!found) return SnapshotNoMembersError(lattice, cuboid, key);
  return acc;
}

Result<std::vector<Isb>> SnapshotCellSeriesOf(const SnapshotCells& cells,
                                              const CuboidLattice& lattice,
                                              int num_levels, CuboidId cuboid,
                                              const CellKey& key, int level) {
  RC_RETURN_IF_ERROR(
      ValidatePointQueryTarget(lattice, cuboid, level, num_levels));
  if (cells.empty()) return SnapshotNoDataError();
  // Same exact packed filter as SnapshotCellOf.
  const auto codec = PackedKeyCodec::ForSchema(lattice.schema());
  std::uint64_t target = 0;
  const bool packed_scan = codec.has_value() && codec->Pack(key, &target);
  auto matches = [&](const CellKey& m_key) {
    const CellKey projected = lattice.ProjectMLayerKey(m_key, cuboid);
    if (packed_scan) {
      std::uint64_t packed = 0;
      return codec->Pack(projected, &packed) && packed == target;
    }
    return projected == key;
  };
  std::vector<Isb> acc;
  bool found = false;
  for (const CellSnapshot& cell : cells) {
    if (!matches(cell.key)) continue;
    const auto& slots = cell.frame->RawSlots(level);
    if (acc.size() < slots.size()) acc.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      AccumulateStandardDim(acc[i], FitFromMoments(slots[i]));
    }
    found = true;
  }
  if (!found) return SnapshotNoMembersError(lattice, cuboid, key);
  return acc;
}

Result<RegressionCube> SnapshotCubeOf(std::shared_ptr<const CubeSchema> schema,
                                      const SnapshotCells& cells,
                                      const StreamCubeEngine::Options& options,
                                      int level, int k, ThreadPool* pool) {
  auto tuples = SnapshotWindowOf(cells, level, k);
  if (!tuples.ok()) return tuples.status();
  return ComputeCubeFromWindow(std::move(schema), *tuples, options, pool);
}

}  // namespace regcube
