#ifndef REGCUBE_CORE_MEMORY_GOVERNOR_H_
#define REGCUBE_CORE_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace regcube {

/// Engine-level spill/eviction observability, assembled from the governor,
/// the frame store, and the per-shard spilled-cell counts. All counters
/// cumulative since the engine was built unless noted.
struct SpillStats {
  std::int64_t budget_bytes = 0;    // 0 = unbounded
  std::int64_t enforcements = 0;    // ladder runs that did work
  std::int64_t memo_evictions = 0;  // rung invocations, by rung
  std::int64_t cache_evictions = 0;
  std::int64_t spill_evictions = 0;
  std::int64_t export_evictions = 0;  // export.dirty rung invocations
  std::int64_t evicted_bytes = 0;   // bytes reclaimed by all rungs
  std::int64_t spilled_cells = 0;   // cells currently cold (point in time)
  std::int64_t spilled_blocks = 0;  // blocks ever written to the cold tier
  std::int64_t spilled_bytes = 0;
  std::int64_t fault_ins = 0;       // cold reads decoded back into RAM
  std::int64_t fault_in_bytes = 0;
  double fault_in_p99_us = 0.0;
  std::int64_t disk_bytes = 0;      // cold-tier footprint (point in time)
  std::int64_t live_bytes = 0;      // cold-tier bytes still referenced
  std::int64_t garbage_bytes = 0;   // released bytes awaiting compaction
  std::int64_t io_errors = 0;       // spill attempts abandoned after retry
  std::int64_t retries = 0;         // spill attempts retried (transient)
  std::int64_t compactions = 0;     // segments rewritten without garbage
  std::int64_t compacted_bytes = 0; // live bytes copied by compactions
  std::int64_t reclaimed_bytes = 0; // garbage bytes compaction dropped
  std::int64_t compaction_failures = 0;
  std::int64_t budget_rejects = 0;  // ingest rejected: budget unreachable
};

/// The global memory budget shared by every shard: a byte ceiling, a usage
/// probe (the MemoryTracker's current total), and a typed eviction ladder.
///
/// Rungs are registered with a priority (lower runs first) and a reclaim
/// callback taking the bytes still over target; the canonical ladder is
///   drop the cube memo -> drop gather/snapshot caches -> spill cold frames
/// so the cheapest-to-rebuild state goes first and the cold tier is the
/// last resort.
///
/// MaybeEnforce is called from the ingest paths (sync ingest and the owner
/// threads' post-drain hook). It is cheap when under budget (one usage
/// probe), and at most one thread runs the ladder at a time — contenders
/// skip rather than queue, so ingest never stalls behind an eviction
/// already in progress. Enforcement drains to a target slightly below the
/// budget (budget minus 1/8) so each run buys headroom instead of
/// thrashing at the ceiling.
class MemoryGovernor {
 public:
  /// `excess` is the bytes still above target; returns bytes reclaimed
  /// (best effort — the governor re-probes usage after every rung, so an
  /// optimistic estimate only skews stats, not enforcement).
  using ReclaimFn = std::function<std::int64_t(std::int64_t excess)>;

  MemoryGovernor(std::int64_t budget_bytes,
                 std::function<std::int64_t()> usage);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Registers an eviction rung. Lower `priority` runs first. Not
  /// thread-safe; call during engine construction only.
  void AddRung(int priority, std::string name, ReclaimFn fn);

  /// Registers an extra usage probe summed with the primary one — e.g.
  /// the api layer's pinned snapshot bytes, which the tracker stops
  /// seeing once engine-side caches evict while a cached snapshot still
  /// holds the frames. Not thread-safe; construction only.
  void AddUsageProbe(std::function<std::int64_t()> probe);

  /// Runs the ladder if usage exceeds the budget. Returns true if any
  /// rung ran. A no-op (false) when under budget or when another thread
  /// is already enforcing.
  bool MaybeEnforce();

  std::int64_t budget_bytes() const { return budget_; }

  /// True when the most recent full ladder run still left usage above the
  /// budget — every rung fired and the engine is out of things to evict.
  /// Cleared by the next enforcement (or probe) that finds usage back
  /// under budget. The engines use this to degrade ingest to typed
  /// ResourceExhausted rejects instead of overshooting without bound.
  bool exhausted() const;

  struct RungStats {
    std::string name;
    std::int64_t invocations = 0;
    std::int64_t reclaimed_bytes = 0;
  };
  struct Stats {
    std::int64_t budget_bytes = 0;
    std::int64_t checks = 0;        // MaybeEnforce calls
    std::int64_t enforcements = 0;  // calls that ran >= 1 rung
    std::int64_t exhausted_runs = 0;  // full-ladder runs still over budget
    std::int64_t max_over_bytes = 0;
    std::vector<RungStats> rungs;   // ladder order
  };
  Stats stats() const;

 private:
  struct Rung {
    int priority = 0;
    std::string name;
    ReclaimFn fn;
  };

  std::int64_t TotalUsage() const;

  const std::int64_t budget_;
  const std::function<std::int64_t()> usage_;
  std::vector<std::function<std::int64_t()>> probes_;
  std::vector<Rung> rungs_;

  std::mutex enforce_mu_;  // serializes the ladder; contenders skip

  mutable std::mutex stats_mu_;
  std::int64_t checks_ = 0;
  std::int64_t enforcements_ = 0;
  std::int64_t exhausted_runs_ = 0;
  std::int64_t max_over_bytes_ = 0;
  std::vector<RungStats> rung_stats_;  // parallel to rungs_

  std::atomic<bool> exhausted_{false};
};

}  // namespace regcube

#endif  // REGCUBE_CORE_MEMORY_GOVERNOR_H_
