#ifndef REGCUBE_CORE_MEMORY_GOVERNOR_H_
#define REGCUBE_CORE_MEMORY_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace regcube {

/// Engine-level spill/eviction observability, assembled from the governor,
/// the frame store, and the per-shard spilled-cell counts. All counters
/// cumulative since the engine was built unless noted.
struct SpillStats {
  std::int64_t budget_bytes = 0;    // 0 = unbounded
  std::int64_t enforcements = 0;    // ladder runs that did work
  std::int64_t memo_evictions = 0;  // rung invocations, by rung
  std::int64_t cache_evictions = 0;
  std::int64_t spill_evictions = 0;
  std::int64_t evicted_bytes = 0;   // bytes reclaimed by all rungs
  std::int64_t spilled_cells = 0;   // cells currently cold (point in time)
  std::int64_t spilled_blocks = 0;  // blocks ever written to the cold tier
  std::int64_t spilled_bytes = 0;
  std::int64_t fault_ins = 0;       // cold reads decoded back into RAM
  std::int64_t fault_in_bytes = 0;
  double fault_in_p99_us = 0.0;
  std::int64_t disk_bytes = 0;      // cold-tier footprint (point in time)
};

/// The global memory budget shared by every shard: a byte ceiling, a usage
/// probe (the MemoryTracker's current total), and a typed eviction ladder.
///
/// Rungs are registered with a priority (lower runs first) and a reclaim
/// callback taking the bytes still over target; the canonical ladder is
///   drop the cube memo -> drop gather/snapshot caches -> spill cold frames
/// so the cheapest-to-rebuild state goes first and the cold tier is the
/// last resort.
///
/// MaybeEnforce is called from the ingest paths (sync ingest and the owner
/// threads' post-drain hook). It is cheap when under budget (one usage
/// probe), and at most one thread runs the ladder at a time — contenders
/// skip rather than queue, so ingest never stalls behind an eviction
/// already in progress. Enforcement drains to a target slightly below the
/// budget (budget minus 1/8) so each run buys headroom instead of
/// thrashing at the ceiling.
class MemoryGovernor {
 public:
  /// `excess` is the bytes still above target; returns bytes reclaimed
  /// (best effort — the governor re-probes usage after every rung, so an
  /// optimistic estimate only skews stats, not enforcement).
  using ReclaimFn = std::function<std::int64_t(std::int64_t excess)>;

  MemoryGovernor(std::int64_t budget_bytes,
                 std::function<std::int64_t()> usage);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Registers an eviction rung. Lower `priority` runs first. Not
  /// thread-safe; call during engine construction only.
  void AddRung(int priority, std::string name, ReclaimFn fn);

  /// Runs the ladder if usage exceeds the budget. Returns true if any
  /// rung ran. A no-op (false) when under budget or when another thread
  /// is already enforcing.
  bool MaybeEnforce();

  std::int64_t budget_bytes() const { return budget_; }

  struct RungStats {
    std::string name;
    std::int64_t invocations = 0;
    std::int64_t reclaimed_bytes = 0;
  };
  struct Stats {
    std::int64_t budget_bytes = 0;
    std::int64_t checks = 0;        // MaybeEnforce calls
    std::int64_t enforcements = 0;  // calls that ran >= 1 rung
    std::int64_t max_over_bytes = 0;
    std::vector<RungStats> rungs;   // ladder order
  };
  Stats stats() const;

 private:
  struct Rung {
    int priority = 0;
    std::string name;
    ReclaimFn fn;
  };

  const std::int64_t budget_;
  const std::function<std::int64_t()> usage_;
  std::vector<Rung> rungs_;

  std::mutex enforce_mu_;  // serializes the ladder; contenders skip

  mutable std::mutex stats_mu_;
  std::int64_t checks_ = 0;
  std::int64_t enforcements_ = 0;
  std::int64_t max_over_bytes_ = 0;
  std::vector<RungStats> rung_stats_;  // parallel to rungs_
};

}  // namespace regcube

#endif  // REGCUBE_CORE_MEMORY_GOVERNOR_H_
