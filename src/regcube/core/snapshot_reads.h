#ifndef REGCUBE_CORE_SNAPSHOT_READS_H_
#define REGCUBE_CORE_SNAPSHOT_READS_H_

#include <memory>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/core/stream_engine.h"

namespace regcube {

class ThreadPool;

/// Lock-free aggregation over a frozen m-layer — the aggregate-outside half
/// of every snapshot read. Inputs are CellSnapshots in canonical key order,
/// aligned to one clock (ShardedStreamEngine::GatherAlignedCells produces
/// exactly that); every function here is pure, so any number of threads may
/// query one frozen cell set concurrently.
///
/// These functions are the single implementation behind both
/// ShardedStreamEngine's read methods and the facade's CubeSnapshot, which
/// is what keeps the two bit-identical: same canonical order, same
/// floating-point reduction order, same error contract as the pre-redesign
/// locked reads.

/// Canonical total order on cell keys. Merged rows are always reduced in
/// this order, which is what makes results shard-count invariant.
bool CanonicalKeyLess(const CellKey& a, const CellKey& b);

/// The same order lifted to frozen cells — the one comparator every sort,
/// merge and tandem walk of the gather path uses.
inline bool CellSnapshotCanonicalLess(const CellSnapshot& a,
                                      const CellSnapshot& b) {
  return CanonicalKeyLess(a.key, b.key);
}

/// The frozen m-layer cells a snapshot query runs against. Each entry
/// shares an immutable refcounted frame block, so copying a SnapshotCells
/// (or holding one in a cache) costs pointers, not frames.
using SnapshotCells = std::vector<CellSnapshot>;

/// The kernels' shared error vocabulary, exported so the member-only
/// gather path (which pre-filters cells before calling a kernel) can
/// preserve the exact legacy error contract.
Status SnapshotNoDataError();
Status SnapshotBadCuboidError(CuboidId cuboid);
Status SnapshotBadLevelError(int level, int num_levels);
Status SnapshotNoMembersError(const CuboidLattice& lattice, CuboidId cuboid,
                              const CellKey& key);

/// The cuboid-then-level validation every point-query door runs before
/// touching any frame (the frame kernels CHECK rather than return, so the
/// typed errors must be produced up front — and every door must produce
/// the same ones, a contract the fuzz oracle pins).
Status ValidatePointQueryTarget(const CuboidLattice& lattice, CuboidId cuboid,
                                int level, int num_levels);

/// Merged m-layer window over the most recent `k` sealed slots of tilt
/// `level`, in canonical key order. FailedPrecondition when no cells.
Result<std::vector<MLayerTuple>> SnapshotWindowOf(const SnapshotCells& cells,
                                                  int level, int k);

/// Observation deck (§4.2 semantics): per o-layer cell, its sealed slot
/// series at `level`. `num_levels` bounds the level check.
Result<StreamCubeEngine::DeckSeries> SnapshotDeckOf(
    const SnapshotCells& cells, const CuboidLattice& lattice, int num_levels,
    int level);

/// O-layer cells whose slope moved by >= `threshold` between the last two
/// sealed slots of `level`, strongest change first (deterministic ties).
Result<std::vector<StreamCubeEngine::TrendChange>> SnapshotTrendChangesOf(
    const SnapshotCells& cells, const CuboidLattice& lattice, int num_levels,
    int level, double threshold);

/// On-the-fly regression of one cell of any lattice cuboid, aggregated from
/// its member m-layer cells in canonical order. Pre: `level` is a valid
/// tilt level (the frame kernels CHECK it rather than returning; every
/// point-query door runs ValidatePointQueryTarget first).
Result<Isb> SnapshotCellOf(const SnapshotCells& cells,
                           const CuboidLattice& lattice, CuboidId cuboid,
                           const CellKey& key, int level, int k);

/// The cell's whole sealed slot series at `level`.
Result<std::vector<Isb>> SnapshotCellSeriesOf(const SnapshotCells& cells,
                                              const CuboidLattice& lattice,
                                              int num_levels, CuboidId cuboid,
                                              const CellKey& key, int level);

/// Partially materialized cube over the window, cubed with the options'
/// algorithm; a non-null pool partitions the per-cuboid work across it.
Result<RegressionCube> SnapshotCubeOf(std::shared_ptr<const CubeSchema> schema,
                                      const SnapshotCells& cells,
                                      const StreamCubeEngine::Options& options,
                                      int level, int k, ThreadPool* pool);

}  // namespace regcube

#endif  // REGCUBE_CORE_SNAPSHOT_READS_H_
