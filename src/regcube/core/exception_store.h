#ifndef REGCUBE_CORE_EXCEPTION_STORE_H_
#define REGCUBE_CORE_EXCEPTION_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "regcube/cube/cell.h"
#include "regcube/htree/htree_cubing.h"

namespace regcube {

/// Storage for the exception cells of the cuboids between the critical
/// layers (Framework 4.1: only exception cells are retained there). Keyed by
/// cuboid; iteration order is deterministic (cuboid id order) so outputs are
/// stable across runs.
class ExceptionStore {
 public:
  ExceptionStore() = default;

  /// Records `isb` as an exception cell. Re-inserting the same cell
  /// overwrites (idempotent for equal measures).
  void Insert(CuboidId cuboid, const CellKey& key, const Isb& isb);

  /// Bulk-inserts a whole map of exception cells for one cuboid.
  void InsertAll(CuboidId cuboid, const CellMap& cells);

  /// Takes ownership of a whole cuboid's exception map — the from-scratch
  /// fold's path, where each cuboid is folded exactly once, so the filter
  /// map IS the stored map and re-hashing every cell into a copy
  /// (InsertAll) is pure waste. Falls back to merging when the cuboid
  /// already holds cells. No-op for an empty map.
  void Adopt(CuboidId cuboid, CellMap&& cells);

  /// Removes one exception cell (no-op if absent) — the retract half of
  /// incremental maintenance, when a patched cell stops satisfying the
  /// exception predicate. A cuboid whose last cell is erased disappears
  /// entirely, so a patched store is indistinguishable from one built
  /// fresh over the same exception set.
  void Erase(CuboidId cuboid, const CellKey& key);

  bool Contains(CuboidId cuboid, const CellKey& key) const;

  /// Exception cells of one cuboid; nullptr if the cuboid has none.
  const CellMap* CellsOf(CuboidId cuboid) const;

  /// Cuboids that have at least one exception cell, ascending.
  std::vector<CuboidId> Cuboids() const;

  std::int64_t total_cells() const { return total_cells_; }

  std::int64_t MemoryBytes() const;

  std::string ToString() const;

 private:
  std::map<CuboidId, CellMap> by_cuboid_;
  std::int64_t total_cells_ = 0;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_EXCEPTION_STORE_H_
