#ifndef REGCUBE_CORE_POPULAR_PATH_H_
#define REGCUBE_CORE_POPULAR_PATH_H_

#include <memory>
#include <optional>
#include <vector>

#include "regcube/common/memory_tracker.h"
#include "regcube/common/status.h"
#include "regcube/cube/exception_policy.h"
#include "regcube/core/regression_cube.h"
#include "regcube/htree/htree.h"

namespace regcube {

class ThreadPool;

/// Options for Algorithm 2.
struct PopularPathOptions {
  /// Exception predicate (same semantics as Algorithm 1).
  ExceptionPolicy policy{0.0};

  /// The popular drilling path. Unset selects DrillPath::MakeDefault
  /// (refine dimensions fully in schema order).
  std::optional<DrillPath> path;

  /// Optional external tracker.
  MemoryTracker* tracker = nullptr;

  /// Optional pool parallelizing each drill step's ComputeDrillChildren
  /// scans: one exception cuboid's chain scans into its off-path children
  /// are independent reads of the (immutable) tree, so they fan out across
  /// the pool; the results are folded sequentially in the same child
  /// order as the serial loop, so the computed cube is identical either
  /// way. The recursion along the path itself stays sequential — each
  /// step's exceptions seed the next.
  ThreadPool* pool = nullptr;
};

/// Algorithm 2 (popular-path cubing): builds the H-tree in the path's
/// attribute-introduction order with aggregated regression points stored in
/// the non-leaf nodes, materializes the cuboids along the path for free
/// (they are tree prefixes), then recursively drills from the o-layer:
/// every exception cell's children in off-path cuboids are computed by
/// rolling up the closest computed cuboid (the deepest tree prefix below
/// them), and only newly found exception cells continue the recursion
/// (Framework 4.1).
///
/// Output contract vs Algorithm 1 (paper footnote 7): both return identical
/// m- and o-layers; Algorithm 2's exception set is the subset of Algorithm
/// 1's that is reachable through exception parents or lies on the path.
Result<RegressionCube> ComputePopularPathCubing(
    std::shared_ptr<const CubeSchema> schema,
    const std::vector<MLayerTuple>& tuples, const PopularPathOptions& options);

}  // namespace regcube

#endif  // REGCUBE_CORE_POPULAR_PATH_H_
