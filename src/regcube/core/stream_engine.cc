#include "regcube/core/stream_engine.h"

#include <algorithm>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/regression/aggregate.h"

namespace regcube {

StreamCubeEngine::StreamCubeEngine(std::shared_ptr<const CubeSchema> schema,
                                   Options options)
    : schema_(std::move(schema)),
      lattice_(*schema_),
      options_(std::move(options)),
      now_(options_.start_tick) {
  RC_CHECK(schema_ != nullptr);
  RC_CHECK(options_.tilt_policy != nullptr);
}

TiltTimeFrame& StreamCubeEngine::FrameFor(const CellKey& key) {
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    it = frames_
             .emplace(key,
                      TiltTimeFrame(options_.tilt_policy, options_.start_tick))
             .first;
  }
  return it->second;
}

Status StreamCubeEngine::Ingest(const StreamTuple& tuple) {
  const CellKey key =
      options_.key_mapper ? options_.key_mapper(tuple.key) : tuple.key;
  RC_RETURN_IF_ERROR(FrameFor(key).Add(tuple.tick, tuple.value));
  now_ = std::max(now_, tuple.tick);
  return Status::OK();
}

IngestReport StreamCubeEngine::IngestBatch(
    const std::vector<StreamTuple>& tuples) {
  IngestReport report;
  report.attempted = static_cast<std::int64_t>(tuples.size());
  for (const StreamTuple& t : tuples) {
    Status s = Ingest(t);
    if (!s.ok()) {
      report.status = std::move(s);
      return report;
    }
    ++report.absorbed;
  }
  return report;
}

Status StreamCubeEngine::SealThrough(TimeTick t) {
  now_ = std::max(now_, t + 1);
  AlignFrames();
  return Status::OK();
}

void StreamCubeEngine::AlignFrames() {
  for (auto& [key, frame] : frames_) {
    Status s = frame.AdvanceTo(now_);
    RC_CHECK(s.ok()) << s.ToString();
  }
}

Result<std::vector<MLayerTuple>> StreamCubeEngine::SnapshotWindow(int level,
                                                                  int k) {
  if (frames_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  std::vector<MLayerTuple> tuples;
  tuples.reserve(frames_.size());
  for (auto& [key, frame] : frames_) {
    auto isb = frame.RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    tuples.push_back(MLayerTuple{key, *isb});
  }
  return tuples;
}

Result<RegressionCube> StreamCubeEngine::ComputeCube(int level, int k) {
  auto tuples = SnapshotWindow(level, k);
  if (!tuples.ok()) return tuples.status();
  return ComputeCubeFromWindow(schema_, *tuples, options_);
}

Result<RegressionCube> ComputeCubeFromWindow(
    std::shared_ptr<const CubeSchema> schema,
    const std::vector<MLayerTuple>& tuples,
    const StreamCubeEngine::Options& options, ThreadPool* pool) {
  if (options.algorithm == StreamCubeEngine::Algorithm::kMoCubing) {
    MoCubingOptions mo;
    mo.policy = options.policy;
    mo.pool = pool;
    return ComputeMoCubing(std::move(schema), tuples, mo);
  }
  PopularPathOptions pp;
  pp.policy = options.policy;
  pp.path = options.path;
  return ComputePopularPathCubing(std::move(schema), tuples, pp);
}

Result<StreamCubeEngine::DeckSeries> StreamCubeEngine::ObservationDeck(
    int level) {
  if (frames_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  // Per o-layer cell, per slot index: moment sums across member frames
  // (Theorem 3.2 applied slot-wise in moment space).
  std::unordered_map<CellKey, std::vector<MomentSums>, CellKeyHash> acc;
  const CuboidId o_id = lattice_.o_layer_id();
  for (auto& [key, frame] : frames_) {
    const CellKey o_key = lattice_.ProjectMLayerKey(key, o_id);
    const auto& slots = frame.RawSlots(level);
    auto& dest = acc[o_key];
    if (dest.size() < slots.size()) dest.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (dest[i].interval.empty()) {
        dest[i] = slots[i];
      } else {
        RC_CHECK(dest[i].interval == slots[i].interval)
            << "frames misaligned at slot " << i;
        dest[i].sum_z += slots[i].sum_z;
        dest[i].sum_tz += slots[i].sum_tz;
      }
    }
  }
  DeckSeries deck;
  deck.reserve(acc.size());
  for (auto& [key, moments] : acc) {
    std::vector<Isb> series;
    series.reserve(moments.size());
    for (const MomentSums& m : moments) series.push_back(FitFromMoments(m));
    deck.emplace(key, std::move(series));
  }
  return deck;
}

Result<std::vector<StreamCubeEngine::TrendChange>>
StreamCubeEngine::DetectTrendChanges(int level, double threshold) {
  auto deck = ObservationDeck(level);
  if (!deck.ok()) return deck.status();
  std::vector<TrendChange> changes;
  for (const auto& [key, series] : *deck) {
    if (series.size() < 2) continue;
    const Isb& prev = series[series.size() - 2];
    const Isb& cur = series[series.size() - 1];
    const double delta = std::abs(cur.slope - prev.slope);
    if (delta >= threshold) {
      changes.push_back(TrendChange{key, prev, cur, delta});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const TrendChange& a, const TrendChange& b) {
              return a.slope_delta > b.slope_delta;
            });
  return changes;
}

Result<Isb> StreamCubeEngine::QueryCell(CuboidId cuboid, const CellKey& key,
                                        int level, int k) {
  if (frames_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  Isb acc;
  bool found = false;
  for (auto& [m_key, frame] : frames_) {
    if (!(lattice_.ProjectMLayerKey(m_key, cuboid) == key)) continue;
    auto isb = frame.RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    AccumulateStandardDim(acc, *isb);
    found = true;
  }
  if (!found) {
    return Status::NotFound(
        StrPrintf("no m-layer cell rolls up into %s of cuboid %s",
                  key.ToString().c_str(),
                  lattice_.CuboidName(cuboid).c_str()));
  }
  return acc;
}

Result<std::vector<Isb>> StreamCubeEngine::QueryCellSeries(
    CuboidId cuboid, const CellKey& key, int level) {
  if (frames_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  std::vector<MomentSums> acc;
  bool found = false;
  for (auto& [m_key, frame] : frames_) {
    if (!(lattice_.ProjectMLayerKey(m_key, cuboid) == key)) continue;
    const auto& slots = frame.RawSlots(level);
    if (acc.size() < slots.size()) acc.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (acc[i].interval.empty()) {
        acc[i] = slots[i];
      } else {
        RC_CHECK(acc[i].interval == slots[i].interval);
        acc[i].sum_z += slots[i].sum_z;
        acc[i].sum_tz += slots[i].sum_tz;
      }
    }
    found = true;
  }
  if (!found) {
    return Status::NotFound(
        StrPrintf("no m-layer cell rolls up into %s of cuboid %s",
                  key.ToString().c_str(),
                  lattice_.CuboidName(cuboid).c_str()));
  }
  std::vector<Isb> series;
  series.reserve(acc.size());
  for (const MomentSums& m : acc) series.push_back(FitFromMoments(m));
  return series;
}

std::vector<CellSnapshot> StreamCubeEngine::ExportCells() const {
  std::vector<CellSnapshot> cells;
  cells.reserve(frames_.size());
  for (const auto& [key, frame] : frames_) {
    CellSnapshot cell{key, frame};
    Status s = cell.frame.AdvanceTo(now_);
    RC_CHECK(s.ok()) << s.ToString();
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::int64_t StreamCubeEngine::MemoryBytes() const {
  std::int64_t bytes = 0;
  constexpr std::int64_t kMapEntryOverhead = 16;
  for (const auto& [key, frame] : frames_) {
    bytes += static_cast<std::int64_t>(sizeof(CellKey)) + kMapEntryOverhead +
             frame.MemoryBytes();
  }
  return bytes;
}

}  // namespace regcube
