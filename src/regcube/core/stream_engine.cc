#include "regcube/core/stream_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "regcube/core/snapshot_reads.h"
#include "regcube/common/logging.h"
#include "regcube/common/memory_tracker.h"
#include "regcube/common/str.h"
#include "regcube/io/cube_io.h"
#include "regcube/regression/aggregate.h"

namespace regcube {

namespace {
// Frozen snapshot blocks cached per cell, reported through MemoryTracker.
constexpr char kFrozenCategory[] = "snapshot.frozen_frames";
// The ingest-maintained per-cuboid member index (see MemberIndex).
constexpr char kMemberIndexCategory[] = "index.members";
// Resident per-cell state (keys, map overhead, live tilt frames).
constexpr char kTiltFramesCategory[] = "stream.tilt_frames";
// The retained published run's entry vector (the frame blocks it points
// at are shared with the frozen cache and counted there). Same category
// as the sharded engine's merged run — both are gather-cache state.
constexpr char kGatherCacheCategory[] = "snapshot.gather_cache";
// Estimated unordered_map node overhead per cell, matching the historical
// MemoryBytes formula.
constexpr std::int64_t kMapEntryOverhead = 16;
}  // namespace

StreamCubeEngine::StreamCubeEngine(std::shared_ptr<const CubeSchema> schema,
                                   Options options)
    : schema_(std::move(schema)),
      lattice_(*schema_),
      options_(std::move(options)),
      now_(options_.start_tick),
      member_index_(&lattice_) {
  RC_CHECK(schema_ != nullptr);
  RC_CHECK(options_.tilt_policy != nullptr);
}

void StreamCubeEngine::MarkDirty(const CellKey& key, CellState& state) {
  // Queue the cell for the next export's patch pass at most once; while it
  // is queued, further writes change nothing the export needs to know.
  if (!state.queued) {
    dirty_cells_.push_back({key, &state});
    state.queued = true;
  }
  state.last_modified = ++revision_;
}

StreamCubeEngine::CellState& StreamCubeEngine::CellFor(const CellKey& key) {
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    it = cells_
             .emplace(key, CellState(std::make_unique<TiltTimeFrame>(
                               options_.tilt_policy, options_.start_tick)))
             .first;
    // Creation is observable (num_cells, window errors) even if the first
    // Add is rejected.
    it->second.last_modified = ++revision_;
    dirty_cells_.push_back({key, &it->second});
    it->second.queued = true;
    // The index half of creation: the new cell gets the next dense id and
    // is folded into every active cuboid map — membership is fixed at
    // birth (keys never change, cells are never erased), so this is the
    // only write the member index ever needs.
    const auto id = static_cast<MemberIndex::MemberId>(cells_by_id_.size());
    cells_by_id_.push_back({key, &it->second});
    member_index_.AddCell(key, id);
    AccountMemberIndex();
    AccountCell(it->second);
  }
  return it->second;
}

void StreamCubeEngine::AccountCell(CellState& state) {
  const std::int64_t bytes =
      static_cast<std::int64_t>(sizeof(CellKey)) + kMapEntryOverhead +
      (state.frame != nullptr ? state.frame->MemoryBytes() : 0);
  const std::int64_t delta = bytes - state.tracked_bytes;
  if (delta == 0) return;
  frame_bytes_ += delta;
  if (tracker_ != nullptr) {
    if (delta > 0) {
      tracker_->Add(kTiltFramesCategory, delta);
    } else {
      tracker_->Release(kTiltFramesCategory, -delta);
    }
  }
  state.tracked_bytes = bytes;
}

Result<TiltTimeFrame*> StreamCubeEngine::LiveFrame(CellState& state,
                                                   GatherStats* stats) {
  if (state.frame != nullptr) return state.frame.get();
  // Fault-in. A failed read (injected fault, lost mapping) leaves the cell
  // spilled and its ref intact: the typed error propagates to whatever
  // query or ingest touched the cell, and the next touch retries — never
  // an abort, never a partially-restored frame.
  if (store_ == nullptr) {
    return Status::Internal("spilled cell without a frame store");
  }
  auto decoded = store_->ReadFrame(state.spill);
  if (!decoded.ok()) return decoded.status();
  auto frame = TiltTimeFrame::FromSnapshot(options_.tilt_policy, *decoded);
  if (!frame.ok()) return frame.status();
  state.frame = std::make_unique<TiltTimeFrame>(*std::move(frame));
  if (stats != nullptr) {
    ++stats->fault_ins;
    stats->fault_in_bytes += state.spill.size;
  }
  store_->Release(state.spill);
  state.spill = BlockRef{};
  --spilled_cells_;
  AccountCell(state);
  return state.frame.get();
}

Result<TiltTimeFrame*> StreamCubeEngine::LiveAlignedFrame(const CellKey& key,
                                                          CellState& state) {
  RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame, LiveFrame(state));
  AlignCellToClock(key, state);
  return frame;
}

void StreamCubeEngine::EnsureIndexed(CuboidId cuboid) {
  if (member_index_.active(cuboid)) return;
  member_index_.Activate(cuboid);
  for (size_t id = 0; id < cells_by_id_.size(); ++id) {
    member_index_.AddCellTo(cuboid, cells_by_id_[id].first,
                            static_cast<MemberIndex::MemberId>(id));
  }
  AccountMemberIndex();
}

void StreamCubeEngine::AccountMemberIndex() {
  // Register only the delta: this runs on every cell creation, so a
  // release-all/re-add cycle would double the tracker traffic for a
  // 16-byte growth.
  const std::int64_t bytes = MemberIndexBytes();
  const std::int64_t delta = bytes - member_index_tracked_;
  if (tracker_ != nullptr && delta != 0) {
    if (delta > 0) {
      tracker_->Add(kMemberIndexCategory, delta);
    } else {
      tracker_->Release(kMemberIndexCategory, -delta);
    }
  }
  member_index_tracked_ = bytes;
}

std::vector<std::pair<const CellKey*, StreamCubeEngine::CellState*>>
StreamCubeEngine::MembersInCanonicalOrder(CuboidId cuboid,
                                          const CellKey& key) {
  EnsureIndexed(cuboid);
  std::vector<std::pair<const CellKey*, CellState*>> members;
  const auto* ids = member_index_.MembersOf(cuboid, key);
  if (ids == nullptr) return members;
  members.reserve(ids->size());
  for (const MemberIndex::MemberId id : *ids) {
    auto& [m_key, state] = cells_by_id_[id];
    members.push_back({&m_key, state});
  }
  std::sort(members.begin(), members.end(),
            [](const auto& a, const auto& b) {
              return CanonicalKeyLess(*a.first, *b.first);
            });
  return members;
}

Status StreamCubeEngine::Ingest(const StreamTuple& tuple) {
  const CellKey key =
      options_.key_mapper ? options_.key_mapper(tuple.key) : tuple.key;
  CellState& state = CellFor(key);
  RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame, LiveFrame(state));
  RC_RETURN_IF_ERROR(frame->Add(tuple.tick, tuple.value));
  MarkDirty(key, state);
  AccountCell(state);
  now_ = std::max(now_, tuple.tick);
  return Status::OK();
}

IngestReport StreamCubeEngine::IngestBatch(
    const std::vector<StreamTuple>& tuples) {
  IngestReport report;
  report.attempted = static_cast<std::int64_t>(tuples.size());
  for (const StreamTuple& t : tuples) {
    Status s = Ingest(t);
    if (!s.ok()) {
      report.status = std::move(s);
      return report;
    }
    ++report.absorbed;
  }
  return report;
}

Status StreamCubeEngine::SealThrough(TimeTick t) {
  now_ = std::max(now_, t + 1);
  AlignFrames();
  return Status::OK();
}

void StreamCubeEngine::AlignFrames() {
  for (auto& [key, state] : cells_) {
    AlignCellToClock(key, state);
  }
}

void StreamCubeEngine::AlignCellToClock(const CellKey& key, CellState& state) {
  if (state.frame == nullptr) {
    // Spilled: alignment is deferred to fault-in. AdvanceTo over the
    // skipped ticks is deterministic (missing ticks contribute zero), so
    // the late advance yields bit-identical slots — and a seal sweep never
    // has to touch the cold tier.
    return;
  }
  const TimeTick from = state.frame->next_tick();
  if (from >= now_) return;
  Status s = state.frame->AdvanceTo(now_);
  RC_CHECK(s.ok()) << s.ToString();
  AccountCell(state);
  // Only an advance that sealed a slot changes what any read can see;
  // moving next_tick within an open unit leaves every slot untouched, so
  // the cell's frozen block (and any revision-memoized snapshot) stays
  // valid.
  if (options_.tilt_policy->AnyUnitEndIn(from, now_)) {
    MarkDirty(key, state);
  }
}

Result<std::vector<MLayerTuple>> StreamCubeEngine::SnapshotWindow(int level,
                                                                  int k) {
  if (cells_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  std::vector<MLayerTuple> tuples;
  tuples.reserve(cells_.size());
  for (auto& [key, state] : cells_) {
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame, LiveAlignedFrame(key, state));
    auto isb = frame->RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    tuples.push_back(MLayerTuple{key, *isb});
  }
  return tuples;
}

Result<RegressionCube> StreamCubeEngine::ComputeCube(int level, int k) {
  auto tuples = SnapshotWindow(level, k);
  if (!tuples.ok()) return tuples.status();
  return ComputeCubeFromWindow(schema_, *tuples, options_);
}

Result<RegressionCube> ComputeCubeFromWindow(
    std::shared_ptr<const CubeSchema> schema,
    const std::vector<MLayerTuple>& tuples,
    const StreamCubeEngine::Options& options, ThreadPool* pool) {
  if (options.algorithm == StreamCubeEngine::Algorithm::kMoCubing) {
    MoCubingOptions mo;
    mo.policy = options.policy;
    mo.pool = pool;
    return ComputeMoCubing(std::move(schema), tuples, mo);
  }
  PopularPathOptions pp;
  pp.policy = options.policy;
  pp.path = options.path;
  pp.pool = pool;
  return ComputePopularPathCubing(std::move(schema), tuples, pp);
}

Result<StreamCubeEngine::DeckSeries> StreamCubeEngine::ObservationDeck(
    int level) {
  if (cells_.empty()) {
    return Status::FailedPrecondition("no stream data ingested yet");
  }
  AlignFrames();
  // Per o-layer cell, per slot index: moment sums across member frames
  // (Theorem 3.2 applied slot-wise in moment space).
  std::unordered_map<CellKey, std::vector<MomentSums>, CellKeyHash> acc;
  const CuboidId o_id = lattice_.o_layer_id();
  for (auto& [key, state] : cells_) {
    const CellKey o_key = lattice_.ProjectMLayerKey(key, o_id);
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame, LiveAlignedFrame(key, state));
    const auto& slots = frame->RawSlots(level);
    auto& dest = acc[o_key];
    if (dest.size() < slots.size()) dest.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (dest[i].interval.empty()) {
        dest[i] = slots[i];
      } else {
        RC_CHECK(dest[i].interval == slots[i].interval)
            << "frames misaligned at slot " << i;
        dest[i].sum_z += slots[i].sum_z;
        dest[i].sum_tz += slots[i].sum_tz;
      }
    }
  }
  DeckSeries deck;
  deck.reserve(acc.size());
  for (auto& [key, moments] : acc) {
    std::vector<Isb> series;
    series.reserve(moments.size());
    for (const MomentSums& m : moments) series.push_back(FitFromMoments(m));
    deck.emplace(key, std::move(series));
  }
  return deck;
}

Result<std::vector<StreamCubeEngine::TrendChange>>
StreamCubeEngine::DetectTrendChanges(int level, double threshold) {
  auto deck = ObservationDeck(level);
  if (!deck.ok()) return deck.status();
  std::vector<TrendChange> changes;
  for (const auto& [key, series] : *deck) {
    if (series.size() < 2) continue;
    const Isb& prev = series[series.size() - 2];
    const Isb& cur = series[series.size() - 1];
    const double delta = std::abs(cur.slope - prev.slope);
    if (delta >= threshold) {
      changes.push_back(TrendChange{key, prev, cur, delta});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const TrendChange& a, const TrendChange& b) {
              return a.slope_delta > b.slope_delta;
            });
  return changes;
}

Result<Isb> StreamCubeEngine::QueryCell(CuboidId cuboid, const CellKey& key,
                                        int level, int k) {
  RC_RETURN_IF_ERROR(ValidatePointQueryTarget(
      lattice_, cuboid, level, options_.tilt_policy->num_levels()));
  if (cells_.empty()) return SnapshotNoDataError();
  // Index probe instead of a cell scan: only the matching members are
  // touched (aligned, regressed, folded), in canonical key order — the
  // same operand order the sharded/snapshot kernels use.
  auto members = MembersInCanonicalOrder(cuboid, key);
  if (members.empty()) {
    return SnapshotNoMembersError(lattice_, cuboid, key);
  }
  Isb acc;
  for (auto& [m_key, state] : members) {
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame,
                        LiveAlignedFrame(*m_key, *state));
    auto isb = frame->RegressLastSlots(level, k);
    if (!isb.ok()) return isb.status();
    AccumulateStandardDim(acc, *isb);
  }
  return acc;
}

Result<std::vector<Isb>> StreamCubeEngine::QueryCellSeries(
    CuboidId cuboid, const CellKey& key, int level) {
  RC_RETURN_IF_ERROR(ValidatePointQueryTarget(
      lattice_, cuboid, level, options_.tilt_policy->num_levels()));
  if (cells_.empty()) return SnapshotNoDataError();
  auto members = MembersInCanonicalOrder(cuboid, key);
  if (members.empty()) {
    return SnapshotNoMembersError(lattice_, cuboid, key);
  }
  std::vector<MomentSums> acc;
  for (auto& [m_key, state] : members) {
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * frame,
                        LiveAlignedFrame(*m_key, *state));
    const auto& slots = frame->RawSlots(level);
    if (acc.size() < slots.size()) acc.resize(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (acc[i].interval.empty()) {
        acc[i] = slots[i];
      } else {
        RC_CHECK(acc[i].interval == slots[i].interval);
        acc[i].sum_z += slots[i].sum_z;
        acc[i].sum_tz += slots[i].sum_tz;
      }
    }
  }
  std::vector<Isb> series;
  series.reserve(acc.size());
  for (const MomentSums& m : acc) series.push_back(FitFromMoments(m));
  return series;
}

void StreamCubeEngine::set_memory_tracker(MemoryTracker* tracker) {
  // Hand the registered bytes from the old tracker to the new one, so
  // detach / re-attach keeps every tracker balanced.
  if (tracker_ != nullptr) {
    if (frozen_bytes_ > 0) tracker_->Release(kFrozenCategory, frozen_bytes_);
    if (member_index_tracked_ > 0) {
      tracker_->Release(kMemberIndexCategory, member_index_tracked_);
    }
    if (frame_bytes_ > 0) tracker_->Release(kTiltFramesCategory, frame_bytes_);
    if (published_run_bytes_ > 0) {
      tracker_->Release(kGatherCacheCategory, published_run_bytes_);
    }
  }
  if (tracker != nullptr) {
    if (frozen_bytes_ > 0) tracker->Add(kFrozenCategory, frozen_bytes_);
    if (member_index_tracked_ > 0) {
      tracker->Add(kMemberIndexCategory, member_index_tracked_);
    }
    if (frame_bytes_ > 0) tracker->Add(kTiltFramesCategory, frame_bytes_);
    if (published_run_bytes_ > 0) {
      tracker->Add(kGatherCacheCategory, published_run_bytes_);
    }
  }
  tracker_ = tracker;
}

void StreamCubeEngine::set_frame_store(FrameStore* store, int shard_index) {
  store_ = store;
  shard_index_ = shard_index;
}

void StreamCubeEngine::PublishFrozen(
    CellState& state, std::shared_ptr<const TiltTimeFrame> block) {
  const std::int64_t new_bytes = block->MemoryBytes();
  const std::int64_t old_bytes =
      state.frozen != nullptr ? state.frozen->MemoryBytes() : 0;
  frozen_bytes_ += new_bytes - old_bytes;
  if (tracker_ != nullptr) {
    if (state.frozen != nullptr) tracker_->Release(kFrozenCategory, old_bytes);
    tracker_->Add(kFrozenCategory, new_bytes);
  }
  state.frozen = std::move(block);
}

Result<std::shared_ptr<const TiltTimeFrame>> StreamCubeEngine::FrozenFor(
    CellState& state, GatherStats* stats) {
  if (state.frozen == nullptr ||
      state.frozen_revision != state.last_modified) {
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * live, LiveFrame(state, stats));
    auto block = std::make_shared<const TiltTimeFrame>(*live);
    if (stats != nullptr) {
      ++stats->materialized;
      stats->bytes_copied += block->MemoryBytes();
    }
    PublishFrozen(state, std::move(block));
    state.frozen_revision = state.last_modified;
  }
  return state.frozen;
}

Status StreamCubeEngine::RefreshPublishedRun(FrozenSlice* out,
                                             GatherStats* stats) {
  if (stats != nullptr) stats->cells += num_cells();
  if (published_run_ != nullptr && revision_ == export_revision_) {
    // No observable change since the run was built: hand it back as-is.
    if (stats != nullptr) ++stats->shards_reused;
    *out = published_run_;
    return Status::OK();
  }
  if (published_run_ == nullptr) {
    // No retained run (first refresh, or the run was dropped by a ladder
    // rung / CleanDirtyCells): full sorted export.
    auto full = std::make_shared<std::vector<CellSnapshot>>();
    full->reserve(cells_.size());
    for (auto& [key, state] : cells_) {
      auto frozen = FrozenFor(state, stats);
      if (!frozen.ok()) return frozen.status();
      full->push_back({key, *std::move(frozen)});
    }
    std::sort(full->begin(), full->end(), CellSnapshotCanonicalLess);
    published_run_ = std::move(full);
  } else {
    // Patch refresh: re-freeze only the dirty cells, then splice them over
    // a pointer-copy of the previous run in one tandem merge — O(changed
    // cells) frame work, O(cells) pointer moves. (The only revision bump
    // that skips the dirty list is RestoreCell, which requires an empty —
    // and therefore runless — engine, so an empty dirty list here really
    // does mean only no-op changes.)
    std::vector<CellSnapshot> patches;
    patches.reserve(dirty_cells_.size());
    for (auto& [key, state] : dirty_cells_) {
      auto frozen = FrozenFor(*state, stats);
      if (!frozen.ok()) {
        // Leave the dirty list, the run, and the export revision
        // untouched: the next refresh retries exactly this work.
        return frozen.status();
      }
      patches.push_back({key, *std::move(frozen)});
    }
    std::sort(patches.begin(), patches.end(), CellSnapshotCanonicalLess);
    auto next = std::make_shared<std::vector<CellSnapshot>>();
    next->reserve(published_run_->size() + patches.size());
    auto base_it = published_run_->begin();
    for (CellSnapshot& patch : patches) {
      while (base_it != published_run_->end() &&
             CanonicalKeyLess(base_it->key, patch.key)) {
        next->push_back(*base_it++);
      }
      if (base_it != published_run_->end() && base_it->key == patch.key) {
        ++base_it;  // replaced by the patch
      }
      next->push_back(std::move(patch));
    }
    next->insert(next->end(), base_it, published_run_->end());
    published_run_ = std::move(next);
  }
  for (auto& entry : dirty_cells_) entry.second->queued = false;
  dirty_cells_.clear();
  export_revision_ = revision_;
  AccountPublishedRun();
  *out = published_run_;
  return Status::OK();
}

std::int64_t StreamCubeEngine::DropPublishedRun() {
  if (published_run_ == nullptr) return 0;
  const std::int64_t freed = published_run_bytes_;
  published_run_ = nullptr;
  AccountPublishedRun();
  return freed;
}

void StreamCubeEngine::AccountPublishedRun() {
  const std::int64_t bytes =
      published_run_ != nullptr
          ? static_cast<std::int64_t>(published_run_->size() *
                                      sizeof(CellSnapshot))
          : 0;
  const std::int64_t delta = bytes - published_run_bytes_;
  if (delta != 0 && tracker_ != nullptr) {
    if (delta > 0) {
      tracker_->Add(kGatherCacheCategory, delta);
    } else {
      tracker_->Release(kGatherCacheCategory, -delta);
    }
  }
  published_run_bytes_ = bytes;
}

Status StreamCubeEngine::ExportCellsFull(std::vector<CellSnapshot>* out,
                                         GatherStats* stats) {
  out->reserve(out->size() + cells_.size());
  for (auto& [key, state] : cells_) {
    RC_ASSIGN_OR_RETURN(TiltTimeFrame * live, LiveFrame(state, stats));
    auto block = std::make_shared<const TiltTimeFrame>(*live);
    if (stats != nullptr) {
      ++stats->materialized;
      stats->bytes_copied += block->MemoryBytes();
    }
    out->push_back({key, std::move(block)});
  }
  if (stats != nullptr) stats->cells += num_cells();
  return Status::OK();
}

Status StreamCubeEngine::ExportMatchingCells(CuboidId cuboid,
                                             const CellKey& key,
                                             std::vector<CellSnapshot>* out,
                                             GatherStats* stats,
                                             PointLookup lookup) {
  if (lookup == PointLookup::kScan) {
    // The retained O(cells) oracle: project every key, export matches.
    for (auto& [m_key, state] : cells_) {
      if (!(lattice_.ProjectMLayerKey(m_key, cuboid) == key)) continue;
      RC_ASSIGN_OR_RETURN(std::shared_ptr<const TiltTimeFrame> frozen,
                          FrozenFor(state, stats));
      out->push_back({m_key, std::move(frozen)});
      if (stats != nullptr) ++stats->cells;
    }
    return Status::OK();
  }
  EnsureIndexed(cuboid);
  const auto* ids = member_index_.MembersOf(cuboid, key);
  if (ids == nullptr) return Status::OK();
  for (const MemberIndex::MemberId id : *ids) {
    auto& [m_key, state] = cells_by_id_[id];
    RC_ASSIGN_OR_RETURN(std::shared_ptr<const TiltTimeFrame> frozen,
                        FrozenFor(*state, stats));
    out->push_back({m_key, std::move(frozen)});
    if (stats != nullptr) ++stats->cells;
  }
  return Status::OK();
}

void StreamCubeEngine::AppendMemberKeys(CuboidId cuboid, const CellKey& key,
                                        std::vector<CellKey>* out) {
  EnsureIndexed(cuboid);
  const auto* ids = member_index_.MembersOf(cuboid, key);
  if (ids == nullptr) return;
  out->reserve(out->size() + ids->size());
  for (const MemberIndex::MemberId id : *ids) {
    out->push_back(cells_by_id_[id].first);
  }
}

StreamCubeEngine::SpillSweep StreamCubeEngine::SpillColdFrames(
    std::int64_t target_bytes) {
  SpillSweep sweep;
  if (store_ == nullptr || target_bytes <= 0) return sweep;
  // Cold-first: resident cells that are clean (not queued for the next
  // export — a dirty cell would be faulted straight back in), least
  // recently modified first.
  std::vector<CellState*> candidates;
  candidates.reserve(cells_.size());
  for (auto& [key, state] : cells_) {
    if (state.frame == nullptr || state.queued) continue;
    candidates.push_back(&state);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CellState* a, const CellState* b) {
              return a->last_modified < b->last_modified;
            });
  for (CellState* state : candidates) {
    if (sweep.bytes >= target_bytes) break;
    // Bounded retry with a short backoff: a transiently failing disk
    // (injected fault, momentary ENOSPC) gets a few more chances before
    // the sweep gives up and leaves everything resident. Either way no
    // state is lost — a cell spills only after its append succeeded.
    constexpr int kMaxAttempts = 3;
    Result<BlockRef> ref = Status::Internal("unset");
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      if (attempt > 0) {
        ++spill_retries_;
        std::this_thread::sleep_for(
            std::chrono::microseconds(50ll << attempt));
      }
      ref = store_->AppendFrame(shard_index_, state->frame->Snapshot());
      if (ref.ok() || ref.status().code() != StatusCode::kUnavailable) {
        break;  // success, or an error a retry cannot fix
      }
    }
    if (!ref.ok()) {
      // Disk trouble even after retries: count it, stop the sweep, leave
      // the rest resident.
      ++spill_io_errors_;
      break;
    }
    sweep.bytes += state->frame->MemoryBytes();
    if (state->frozen != nullptr) {
      const std::int64_t frozen = state->frozen->MemoryBytes();
      frozen_bytes_ -= frozen;
      if (tracker_ != nullptr) tracker_->Release(kFrozenCategory, frozen);
      state->frozen = nullptr;
      state->frozen_revision = 0;
      sweep.bytes += frozen;
    }
    state->frame.reset();
    state->spill = *ref;
    ++spilled_cells_;
    ++sweep.cells;
    AccountCell(*state);
  }
  return sweep;
}

std::int64_t StreamCubeEngine::CleanDirtyCells() {
  if (dirty_cells_.empty()) return 0;
  const std::int64_t cleaned =
      static_cast<std::int64_t>(dirty_cells_.size());
  for (auto& entry : dirty_cells_) entry.second->queued = false;
  dirty_cells_.clear();
  // Nobody exported the skipped patches, so the retained run must not
  // pass for fresh at this revision: drop it, and the next refresh
  // re-exports in full — correctness is preserved, only the delta
  // shortcut is forfeited.
  export_revision_ = revision_;
  DropPublishedRun();
  return cleaned;
}

void StreamCubeEngine::RepointSpilledBlocks(
    const std::vector<FrameStore::Relocation>& relocations) {
  if (relocations.empty()) return;
  // A compaction rewrites exactly one segment, so every relocation names
  // the same source file.
  const std::int32_t from_file = relocations.front().from.file;
  std::unordered_map<std::int64_t, BlockRef> moved;
  moved.reserve(relocations.size());
  for (const FrameStore::Relocation& r : relocations) {
    moved[r.from.offset] = r.to;
  }
  for (auto& [key, state] : cells_) {
    if (state.frame != nullptr || state.spill.file != from_file) continue;
    auto it = moved.find(state.spill.offset);
    if (it != moved.end()) state.spill = it->second;
  }
}

std::int64_t StreamCubeEngine::DropFrozenBlocks() {
  std::int64_t freed = 0;
  for (auto& [key, state] : cells_) {
    if (state.frozen == nullptr) continue;
    const std::int64_t bytes = state.frozen->MemoryBytes();
    frozen_bytes_ -= bytes;
    if (tracker_ != nullptr) tracker_->Release(kFrozenCategory, bytes);
    state.frozen = nullptr;
    state.frozen_revision = 0;
    freed += bytes;
  }
  return freed;
}

Status StreamCubeEngine::RestoreCell(const CellKey& key, const BlockRef& ref) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "RestoreCell requires an attached frame store");
  }
  if (!ref.valid()) {
    return Status::InvalidArgument("invalid block ref for restored cell");
  }
  if (cells_.find(key) != cells_.end()) {
    return Status::InvalidArgument("duplicate cell key in checkpoint");
  }
  auto it = cells_.emplace(key, CellState(nullptr)).first;
  CellState& state = it->second;
  state.spill = ref;
  // Creation is observable; the cell is NOT dirty-queued — a restored
  // engine has no gather base, so its first export is a full one and picks
  // the cell up there (faulting it in from the checkpoint mapping).
  state.last_modified = ++revision_;
  const auto id = static_cast<MemberIndex::MemberId>(cells_by_id_.size());
  cells_by_id_.push_back({it->first, &state});
  member_index_.AddCell(key, id);
  AccountMemberIndex();
  ++spilled_cells_;
  AccountCell(state);
  return Status::OK();
}

Status StreamCubeEngine::ExportEncodedFrames(
    std::vector<std::pair<CellKey, std::string>>* out) {
  out->reserve(out->size() + cells_.size());
  for (auto& [key, state] : cells_) {
    if (state.frame != nullptr) {
      out->push_back({key, EncodeTiltFrameState(state.frame->Snapshot())});
    } else {
      // Cold cells are copied block-to-block — no decode/re-encode, no
      // fault-in: checkpointing a mostly-cold engine stays cheap.
      auto raw = store_->ReadRawBlock(state.spill);
      if (!raw.ok()) return raw.status();
      out->push_back({key, *std::move(raw)});
    }
  }
  return Status::OK();
}

}  // namespace regcube
