#include "regcube/core/ncr_cube.h"

#include <cmath>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"

namespace regcube {

const char* NcrRollupName(NcrRollup rollup) {
  switch (rollup) {
    case NcrRollup::kSumResponses:
      return "sum-responses";
    case NcrRollup::kPoolObservations:
      return "pool-observations";
  }
  return "?";
}

NcrCube::NcrCube(std::shared_ptr<const CubeSchema> schema)
    : schema_(std::move(schema)), lattice_(*schema_) {
  RC_CHECK(schema_ != nullptr);
}

std::int64_t NcrCube::total_exception_cells() const {
  std::int64_t total = 0;
  for (const auto& [cuboid, cells] : exceptions_) {
    total += static_cast<std::int64_t>(cells.size());
  }
  return total;
}

Result<NcrCellMap> ComputeNcrCuboid(const CuboidLattice& lattice,
                                    const std::vector<NcrTuple>& tuples,
                                    CuboidId cuboid, NcrRollup rollup) {
  NcrCellMap cells;
  for (const NcrTuple& tuple : tuples) {
    CellKey key = lattice.ProjectMLayerKey(tuple.key, cuboid);
    auto it = cells.find(key);
    if (it == cells.end()) {
      cells.emplace(key, tuple.measure);
      continue;
    }
    Status merged = rollup == NcrRollup::kSumResponses
                        ? it->second.MergeSameDesign(tuple.measure)
                        : it->second.MergeDisjoint(tuple.measure);
    if (!merged.ok()) {
      return Status::InvalidArgument(StrPrintf(
          "%s roll-up failed for cell %s of %s: %s", NcrRollupName(rollup),
          key.ToString().c_str(), lattice.CuboidName(cuboid).c_str(),
          merged.message().c_str()));
    }
  }
  return cells;
}

namespace {

/// Exception test on a cell's solved model; singular cells are either an
/// error or simply not exceptional, per the options.
Result<bool> IsExceptionalCell(const NcrMeasure& measure,
                               const NcrCubeOptions& options) {
  auto fit = measure.Solve();
  if (!fit.ok()) {
    if (options.fail_on_singular_cells) return fit.status();
    return false;
  }
  if (options.watch_coefficient >= fit->theta.size()) {
    return Status::InvalidArgument(StrPrintf(
        "watch_coefficient %zu out of range for %zu-parameter model",
        options.watch_coefficient, fit->theta.size()));
  }
  return std::fabs(fit->theta[options.watch_coefficient]) >=
         options.threshold;
}

}  // namespace

Result<NcrCube> ComputeNcrCube(std::shared_ptr<const CubeSchema> schema,
                               const std::vector<NcrTuple>& tuples,
                               const NcrCubeOptions& options) {
  RC_CHECK(schema != nullptr);
  if (tuples.empty()) {
    return Status::InvalidArgument("no NCR tuples to cube");
  }
  const std::size_t arity = tuples.front().measure.num_features();
  for (const NcrTuple& t : tuples) {
    if (t.measure.num_features() != arity) {
      return Status::InvalidArgument(
          "all tuples must share one regression basis");
    }
  }

  NcrCube cube(schema);
  const CuboidLattice& lattice = cube.lattice();

  // m-layer: tuples aggregated by key (duplicates merge per roll-up).
  {
    auto m_cells = ComputeNcrCuboid(lattice, tuples, lattice.m_layer_id(),
                                    options.rollup);
    if (!m_cells.ok()) return m_cells.status();
    cube.mutable_m_layer() = std::move(m_cells).value();
  }

  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    if (c == lattice.m_layer_id()) continue;
    auto cells = ComputeNcrCuboid(lattice, tuples, c, options.rollup);
    if (!cells.ok()) return cells.status();
    if (c == lattice.o_layer_id()) {
      cube.mutable_o_layer() = std::move(cells).value();
      continue;
    }
    NcrCellMap retained;
    for (auto& [key, measure] : *cells) {
      auto exceptional = IsExceptionalCell(measure, options);
      if (!exceptional.ok()) return exceptional.status();
      if (*exceptional) retained.emplace(key, std::move(measure));
    }
    if (!retained.empty()) {
      cube.mutable_exceptions()[c] = std::move(retained);
    }
  }

  if (lattice.o_layer_id() == lattice.m_layer_id()) {
    cube.mutable_o_layer() = cube.m_layer();
  }
  return cube;
}

}  // namespace regcube
