#ifndef REGCUBE_CORE_INGEST_QUEUE_H_
#define REGCUBE_CORE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "regcube/common/bounded_ring.h"
#include "regcube/common/status.h"
#include "regcube/core/stream_engine.h"

namespace regcube {

/// How writes reach the shards (EngineBuilder::SetIngestMode).
enum class IngestMode {
  kSync,   // callers absorb tuples inline under the shard mutex (legacy)
  kAsync,  // callers enqueue; a shard-owner thread absorbs off-thread
};

/// What happens when an async ingest queue is full
/// (EngineBuilder::SetBackpressure).
enum class BackpressurePolicy {
  kBlock,       // the producer waits for space: lossless, latency absorbs load
  kDropOldest,  // the oldest queued tuple is evicted: lossy, bounded staleness
  kReject,      // the overflow is refused: caller sees ResourceExhausted
};

/// Stable human-readable name ("block", "drop-oldest", "reject").
const char* BackpressurePolicyName(BackpressurePolicy policy);

/// Async ingest configuration, per engine (every shard gets its own queue
/// of `queue_capacity` tuples). The default is the synchronous path, so
/// existing construction sites are unaffected.
struct IngestConfig {
  IngestMode mode = IngestMode::kSync;
  std::int64_t queue_capacity = 4096;  // per-shard, in tuples
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
};

/// Outcome of an asynchronous enqueue: how many tuples entered the queues,
/// how many older queued tuples were evicted to make room (kDropOldest),
/// and how many of this batch were refused (kReject — `status` carries the
/// typed ResourceExhausted error). Acceptance is not absorption: the data
/// becomes visible to reads only after the shard-owner threads drain it;
/// Flush() is the barrier that waits for exactly that.
struct IngestTicket {
  std::int64_t attempted = 0;
  std::int64_t enqueued = 0;
  std::int64_t dropped = 0;
  std::int64_t rejected = 0;
  Status status;  // OK unless rejected > 0

  bool ok() const { return status.ok(); }

  void Merge(const IngestTicket& other) {
    attempted += other.attempted;
    enqueued += other.enqueued;
    dropped += other.dropped;
    rejected += other.rejected;
    if (status.ok() && !other.status.ok()) status = other.status;
  }
};

/// Observable state of one shard's ingest queue. Counters are cumulative
/// since engine construction; `depth`/`high_water` describe the queue
/// itself. `p99_enqueue_us` is the 99th-percentile latency of an Enqueue
/// call (including any kBlock wait), estimated from a power-of-two
/// histogram — resolution is one binary order of magnitude.
struct ShardIngestStats {
  std::int64_t depth = 0;         // tuples queued right now
  std::int64_t high_water = 0;    // max depth ever reached
  std::int64_t enqueued = 0;      // tuples accepted into the queue
  std::int64_t absorbed = 0;      // tuples drained and applied to the shard
  std::int64_t dropped = 0;       // tuples evicted by kDropOldest
  std::int64_t rejected = 0;      // tuples refused by kReject
  std::int64_t blocked = 0;       // Enqueue calls that had to wait (kBlock)
  std::int64_t absorb_errors = 0; // drained tuples the shard engine refused
  double p99_enqueue_us = 0.0;

  // The histogram behind p99_enqueue_us (bucket i counts calls in
  // [2^(i-1), 2^i) ns), carried so Merge can recompute the percentile of
  // the *union* of samples. A percentile has no sum: averaging per-shard
  // p99s understates the tail whenever shards are imbalanced, and even
  // taking the max is only an upper bound — the histogram sum is exact
  // (to bucket resolution).
  std::vector<std::int64_t> latency_hist;
  std::int64_t latency_samples = 0;

  /// Histogram-sums the latency figures (recomputing p99 from the summed
  /// buckets); falls back to worst-shard max when a side carries no
  /// histogram. All counters add.
  void Merge(const ShardIngestStats& other);
};

/// Nearest-rank p99, in microseconds, of a power-of-two ns histogram
/// (bucket i counts samples in [2^(i-1), 2^i) ns; the bucket's upper bound
/// is reported). 0 when `samples` is 0.
double P99FromLatencyHistogram(const std::vector<std::int64_t>& hist,
                               std::int64_t samples);

/// The whole-engine ingest report (Engine::IngestStats): the configured
/// mode/policy plus per-shard queue stats and their merged totals. In sync
/// mode `per_shard` is empty and the totals are zero — there are no queues.
struct IngestStats {
  IngestMode mode = IngestMode::kSync;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  std::int64_t queue_capacity = 0;
  ShardIngestStats total;
  std::vector<ShardIngestStats> per_shard;
};

/// A bounded multi-producer single-consumer tuple queue — the decoupling
/// point of the async ingest subsystem. Many writer threads Enqueue
/// concurrently; exactly one consumer (the shard's ShardWriter thread)
/// drains with PopAll and acknowledges with MarkAbsorbed. All state is
/// guarded by one small mutex whose critical sections are index arithmetic
/// and slot moves — never tilt-frame maintenance, which is the whole
/// point: callers touch the queue lock, only the owner thread touches the
/// shard.
///
/// The queue also carries the Flush() barrier: `enqueued_seq()` names a
/// point in the accept order, and WaitResolved(seq) blocks until every
/// tuple accepted before that point has been either absorbed by the
/// consumer or deliberately dropped (kDropOldest). Absorption is
/// acknowledged under the same mutex the waiter reads, so "WaitResolved
/// returned" happens-after "the shard engine absorbed the tuple" — the
/// happens-before edge snapshots and tests build on.
class IngestQueue {
 public:
  IngestQueue(std::int64_t capacity, BackpressurePolicy policy);

  /// Producer side: appends `n` tuples in order, *consuming* them —
  /// accepted tuples are moved into the ring (no key copy under the
  /// lock), so callers hand over a scratch buffer they no longer need.
  /// kBlock waits for space (fairly interleaving with other producers);
  /// kDropOldest evicts from the head; kReject refuses the overflow and
  /// reports ResourceExhausted in the ticket. After Close(), remaining
  /// tuples are rejected with FailedPrecondition regardless of policy.
  IngestTicket Enqueue(StreamTuple* tuples, std::int64_t n);

  /// Consumer side: blocks until tuples are queued or the queue is closed,
  /// then moves *all* currently queued tuples into `out` (appended).
  /// Returns the number moved; 0 means closed-and-drained — the consumer's
  /// exit signal. Draining everything at once is what shrinks the shard
  /// mutex: the owner takes it once per drained batch, not once per tuple.
  std::int64_t PopAll(std::vector<StreamTuple>* out);

  /// Consumer side: acknowledges a popped batch after applying it to the
  /// shard — `absorbed` of the `popped` tuples landed; the rest were
  /// refused by the shard engine (`status` is its first error, recorded
  /// for the next Flush() to surface). Wakes WaitResolved waiters.
  void MarkAbsorbed(std::int64_t popped, std::int64_t absorbed,
                    const Status& status);

  /// The number of tuples ever accepted — a point in the accept order that
  /// WaitResolved can wait on.
  std::uint64_t enqueued_seq() const;

  /// Blocks until every tuple accepted before `seq` has been absorbed or
  /// dropped. Returns immediately when that already holds.
  void WaitResolved(std::uint64_t seq);

  /// The first shard-engine absorb error since the last call, cleared on
  /// read (Flush() surfaces it to the caller exactly once).
  Status TakeFirstError();

  /// Rejects future enqueues and wakes the consumer and all waiters; the
  /// consumer drains what remains, then PopAll returns 0.
  void Close();

  ShardIngestStats Stats() const;

  std::int64_t capacity() const { return capacity_; }

  /// Bytes retained by the preallocated ring slots — the fixed figure the
  /// "ingest.queue" memory pool accounts (keys' own heap storage varies
  /// per tuple and is not tracked; the accounting is analytic).
  std::int64_t SlotBytes() const {
    return capacity_ * static_cast<std::int64_t>(sizeof(StreamTuple));
  }

 private:
  void RecordEnqueueLatencyLocked(std::int64_t ns);

  const std::int64_t capacity_;
  const BackpressurePolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;  // consumer waits here
  std::condition_variable not_full_;   // kBlock producers wait here
  std::condition_variable resolved_;   // Flush waiters wait here
  BoundedRing<StreamTuple> ring_;
  bool closed_ = false;

  // Counters (all guarded by mu_). resolved = absorbed + failed + dropped:
  // every accepted tuple ends in exactly one of those buckets, so a Flush
  // target of `enqueued_` is always eventually reached.
  std::uint64_t enqueued_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t dropped_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t blocked_calls_ = 0;
  std::int64_t high_water_ = 0;
  Status first_error_;

  // Power-of-two latency histogram: bucket i counts enqueue calls that
  // took [2^(i-1), 2^i) ns (bucket 0: < 1 ns).
  static constexpr int kLatencyBuckets = 40;
  std::int64_t latency_ns_buckets_[kLatencyBuckets] = {};
  std::int64_t latency_samples_ = 0;
};

}  // namespace regcube

#endif  // REGCUBE_CORE_INGEST_QUEUE_H_
