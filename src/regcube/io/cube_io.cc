#include "regcube/io/cube_io.h"

#include "regcube/common/str.h"
#include "regcube/io/binary_io.h"

namespace regcube {
namespace {

constexpr std::uint32_t kTuplesMagic = 0x31544752;  // "RGT1"
constexpr std::uint32_t kCubeMagic = 0x31434752;    // "RGC1"
constexpr std::uint32_t kFrameMagic = 0x31464752;   // "RGF1"

/// Rejects element counts that cannot possibly fit in the remaining input
/// (corrupt data must not drive a giant reserve()).
Status CheckCount(const ByteReader& r, std::uint64_t count,
                  std::size_t min_bytes_per_element) {
  if (count > r.remaining() / min_bytes_per_element + 1) {
    return Status::InvalidArgument(StrPrintf(
        "element count %llu exceeds what %zu remaining bytes can hold",
        static_cast<unsigned long long>(count), r.remaining()));
  }
  return Status::OK();
}

void EncodeInterval(ByteWriter* w, const TimeInterval& iv) {
  w->WriteI64(iv.tb);
  w->WriteI64(iv.te);
}

Result<TimeInterval> DecodeInterval(ByteReader* r) {
  TimeInterval iv;
  RC_ASSIGN_OR_RETURN(iv.tb, r->ReadI64());
  RC_ASSIGN_OR_RETURN(iv.te, r->ReadI64());
  return iv;
}

void EncodeIsb(ByteWriter* w, const Isb& isb) {
  EncodeInterval(w, isb.interval);
  w->WriteDouble(isb.base);
  w->WriteDouble(isb.slope);
}

Result<Isb> DecodeIsb(ByteReader* r) {
  Isb isb;
  RC_ASSIGN_OR_RETURN(isb.interval, DecodeInterval(r));
  RC_ASSIGN_OR_RETURN(isb.base, r->ReadDouble());
  RC_ASSIGN_OR_RETURN(isb.slope, r->ReadDouble());
  return isb;
}

void EncodeCellMap(ByteWriter* w, const CellMap& cells) {
  w->WriteU64(cells.size());
  for (const auto& [key, isb] : cells) {
    EncodeCellKey(w, key);
    EncodeIsb(w, isb);
  }
}

Result<CellMap> DecodeCellMap(ByteReader* r, int expected_dims) {
  RC_ASSIGN_OR_RETURN(std::uint64_t count, r->ReadU64());
  RC_RETURN_IF_ERROR(CheckCount(*r, count, 1 + 32));
  CellMap cells;
  cells.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RC_ASSIGN_OR_RETURN(CellKey key, DecodeCellKey(r));
    if (key.num_dims() != expected_dims) {
      return Status::InvalidArgument(StrPrintf(
          "cell key has %d dims, schema has %d", key.num_dims(),
          expected_dims));
    }
    RC_ASSIGN_OR_RETURN(Isb isb, DecodeIsb(r));
    // A valid encoding never repeats a key; a duplicate means a corrupted
    // key byte collided with another cell — reject instead of silently
    // merging into a smaller map.
    if (!cells.emplace(key, isb).second) {
      return Status::InvalidArgument(
          StrPrintf("duplicate cell key %s", key.ToString().c_str()));
    }
  }
  return cells;
}

void EncodeMoments(ByteWriter* w, const MomentSums& m) {
  EncodeInterval(w, m.interval);
  w->WriteDouble(m.sum_z);
  w->WriteDouble(m.sum_tz);
}

Result<MomentSums> DecodeMoments(ByteReader* r) {
  MomentSums m;
  RC_ASSIGN_OR_RETURN(m.interval, DecodeInterval(r));
  RC_ASSIGN_OR_RETURN(m.sum_z, r->ReadDouble());
  RC_ASSIGN_OR_RETURN(m.sum_tz, r->ReadDouble());
  return m;
}

Status ExpectMagic(ByteReader* r, std::uint32_t magic, const char* what) {
  auto got = r->ReadU32();
  if (!got.ok()) return got.status();
  if (*got != magic) {
    return Status::InvalidArgument(
        StrPrintf("bad magic for %s: got 0x%08x", what, *got));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeMLayerTuples(const std::vector<MLayerTuple>& tuples) {
  ByteWriter w;
  w.WriteU32(kTuplesMagic);
  w.WriteU64(tuples.size());
  for (const MLayerTuple& t : tuples) {
    EncodeCellKey(&w, t.key);
    EncodeIsb(&w, t.measure);
  }
  return w.Release();
}

Result<std::vector<MLayerTuple>> DecodeMLayerTuples(std::string_view data) {
  ByteReader r(data);
  RC_RETURN_IF_ERROR(ExpectMagic(&r, kTuplesMagic, "m-layer tuples"));
  RC_ASSIGN_OR_RETURN(std::uint64_t count, r.ReadU64());
  RC_RETURN_IF_ERROR(CheckCount(r, count, 1 + 32));
  std::vector<MLayerTuple> tuples;
  tuples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MLayerTuple t;
    RC_ASSIGN_OR_RETURN(t.key, DecodeCellKey(&r));
    RC_ASSIGN_OR_RETURN(t.measure, DecodeIsb(&r));
    tuples.push_back(std::move(t));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after m-layer tuples");
  }
  return tuples;
}

std::string EncodeRegressionCube(const RegressionCube& cube) {
  ByteWriter w;
  w.WriteU32(kCubeMagic);
  w.WriteU8(static_cast<std::uint8_t>(cube.schema().num_dims()));
  EncodeCellMap(&w, cube.m_layer());
  EncodeCellMap(&w, cube.o_layer());
  const std::vector<CuboidId> cuboids = cube.exceptions().Cuboids();
  w.WriteU32(static_cast<std::uint32_t>(cuboids.size()));
  for (CuboidId c : cuboids) {
    w.WriteU32(static_cast<std::uint32_t>(c));
    EncodeCellMap(&w, *cube.exceptions().CellsOf(c));
  }
  return w.Release();
}

Result<RegressionCube> DecodeRegressionCube(
    std::shared_ptr<const CubeSchema> schema, std::string_view data) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must be provided");
  }
  ByteReader r(data);
  RC_RETURN_IF_ERROR(ExpectMagic(&r, kCubeMagic, "regression cube"));
  RC_ASSIGN_OR_RETURN(std::uint8_t dims, r.ReadU8());
  if (dims != schema->num_dims()) {
    return Status::InvalidArgument(
        StrPrintf("cube encoded with %u dims, schema has %d", dims,
                  schema->num_dims()));
  }
  RegressionCube cube(schema);
  RC_ASSIGN_OR_RETURN(cube.mutable_m_layer(),
                      DecodeCellMap(&r, schema->num_dims()));
  RC_ASSIGN_OR_RETURN(cube.mutable_o_layer(),
                      DecodeCellMap(&r, schema->num_dims()));
  RC_ASSIGN_OR_RETURN(std::uint32_t num_cuboids, r.ReadU32());
  for (std::uint32_t i = 0; i < num_cuboids; ++i) {
    RC_ASSIGN_OR_RETURN(std::uint32_t cuboid, r.ReadU32());
    if (static_cast<std::int64_t>(cuboid) >= cube.lattice().num_cuboids()) {
      return Status::InvalidArgument(
          StrPrintf("cuboid id %u outside the schema's lattice", cuboid));
    }
    RC_ASSIGN_OR_RETURN(CellMap cells, DecodeCellMap(&r, schema->num_dims()));
    cube.mutable_exceptions().InsertAll(static_cast<CuboidId>(cuboid), cells);
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after regression cube");
  }
  return cube;
}

std::string EncodeTiltFrameState(const TiltFrameState& state) {
  ByteWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteI64(state.start_tick);
  w.WriteI64(state.next_tick);
  w.WriteU32(static_cast<std::uint32_t>(state.levels.size()));
  for (const TiltFrameState::Level& level : state.levels) {
    w.WriteU32(static_cast<std::uint32_t>(level.slots.size()));
    for (const MomentSums& slot : level.slots) EncodeMoments(&w, slot);
    EncodeMoments(&w, level.pending);
    w.WriteU8(level.pending_active ? 1 : 0);
    w.WriteI64(level.pending_start);
  }
  return w.Release();
}

Result<TiltFrameState> DecodeTiltFrameState(std::string_view data) {
  ByteReader r(data);
  RC_RETURN_IF_ERROR(ExpectMagic(&r, kFrameMagic, "tilt frame"));
  TiltFrameState state;
  RC_ASSIGN_OR_RETURN(state.start_tick, r.ReadI64());
  RC_ASSIGN_OR_RETURN(state.next_tick, r.ReadI64());
  RC_ASSIGN_OR_RETURN(std::uint32_t num_levels, r.ReadU32());
  RC_RETURN_IF_ERROR(CheckCount(r, num_levels, 4 + 32 + 9));
  state.levels.resize(num_levels);
  for (std::uint32_t li = 0; li < num_levels; ++li) {
    TiltFrameState::Level& level = state.levels[li];
    RC_ASSIGN_OR_RETURN(std::uint32_t num_slots, r.ReadU32());
    RC_RETURN_IF_ERROR(CheckCount(r, num_slots, 32));
    level.slots.reserve(num_slots);
    for (std::uint32_t s = 0; s < num_slots; ++s) {
      RC_ASSIGN_OR_RETURN(MomentSums m, DecodeMoments(&r));
      level.slots.push_back(m);
    }
    RC_ASSIGN_OR_RETURN(level.pending, DecodeMoments(&r));
    RC_ASSIGN_OR_RETURN(std::uint8_t active, r.ReadU8());
    level.pending_active = active != 0;
    RC_ASSIGN_OR_RETURN(level.pending_start, r.ReadI64());
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after tilt frame");
  }
  return state;
}


std::uint32_t TiltFrameStateMagic() { return kFrameMagic; }

void EncodeCellKey(ByteWriter* w, const CellKey& key) {
  w->WriteU8(static_cast<std::uint8_t>(key.num_dims()));
  for (int d = 0; d < key.num_dims(); ++d) w->WriteU32(key[d]);
}

Result<CellKey> DecodeCellKey(ByteReader* r) {
  RC_ASSIGN_OR_RETURN(std::uint8_t dims, r->ReadU8());
  if (dims > kMaxDims) {
    return Status::InvalidArgument(
        StrPrintf("cell key with %u dimensions (max %d)", dims, kMaxDims));
  }
  CellKey key(dims);
  for (int d = 0; d < dims; ++d) {
    RC_ASSIGN_OR_RETURN(std::uint32_t v, r->ReadU32());
    key.set(d, v);
  }
  return key;
}

}  // namespace regcube
