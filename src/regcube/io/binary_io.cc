#include "regcube/io/binary_io.h"

#include <cstdio>
#include <cstring>

#include "regcube/common/str.h"

namespace regcube {
namespace {

template <typename T>
void AppendLe(std::string* out, T v) {
  // Serialize explicitly byte-by-byte so the format is identical on any
  // host endianness.
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T ParseLe(const char* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void ByteWriter::WriteU8(std::uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void ByteWriter::WriteU32(std::uint32_t v) { AppendLe(&buffer_, v); }

void ByteWriter::WriteU64(std::uint64_t v) { AppendLe(&buffer_, v); }

void ByteWriter::WriteI64(std::int64_t v) {
  AppendLe(&buffer_, static_cast<std::uint64_t>(v));
}

void ByteWriter::WriteDouble(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLe(&buffer_, bits);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<std::uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

void ByteWriter::WriteRaw(std::string_view s) {
  buffer_.append(s.data(), s.size());
}

Status ByteReader::Need(std::size_t n) const {
  if (remaining() < n) {
    return Status::OutOfRange(
        StrPrintf("truncated input: need %zu bytes, have %zu", n,
                  remaining()));
  }
  return Status::OK();
}

Result<std::uint8_t> ByteReader::ReadU8() {
  RC_RETURN_IF_ERROR(Need(1));
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> ByteReader::ReadU32() {
  RC_RETURN_IF_ERROR(Need(4));
  std::uint32_t v = ParseLe<std::uint32_t>(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  RC_RETURN_IF_ERROR(Need(8));
  std::uint64_t v = ParseLe<std::uint64_t>(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v.ok()) return v.status();
  return static_cast<std::int64_t>(*v);
}

Result<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::uint64_t raw = *bits;
  std::memcpy(&v, &raw, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadU32();
  if (!len.ok()) return len.status();
  RC_RETURN_IF_ERROR(Need(*len));
  std::string out(data_.substr(pos_, *len));
  pos_ += *len;
  return out;
}

Result<std::string_view> ByteReader::ReadRaw(std::size_t n) {
  RC_RETURN_IF_ERROR(Need(n));
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::SeekTo(std::size_t offset) {
  if (offset > data_.size()) {
    return Status::OutOfRange(StrPrintf(
        "seek to %zu past end of %zu-byte input", offset, data_.size()));
  }
  pos_ = offset;
  return Status::OK();
}

Status WriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrPrintf("cannot open %s for writing",
                                      tmp.c_str()));
  }
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != data.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal(StrPrintf("short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrPrintf("cannot rename %s -> %s", tmp.c_str(),
                                      path.c_str()));
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrPrintf("cannot open %s", path.c_str()));
  }
  std::string out;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.append(chunk, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal(StrPrintf("read error on %s", path.c_str()));
  }
  return out;
}

}  // namespace regcube
