#include "regcube/io/fault_injector.h"

#include "regcube/common/str.h"

namespace regcube {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kMmap:
      return "mmap";
    case FaultOp::kRename:
      return "rename";
  }
  return "unknown";
}

void FaultInjector::FailNth(FaultOp op, std::int64_t nth, bool repeat) {
  std::lock_guard<std::mutex> lock(mu_);
  Plan& plan = plans_[static_cast<int>(op)];
  plan.armed = true;
  plan.nth = nth;
  plan.every = 0;
  plan.repeat = repeat;
  plan.calls = 0;
}

void FaultInjector::FailEvery(FaultOp op, std::int64_t every) {
  std::lock_guard<std::mutex> lock(mu_);
  Plan& plan = plans_[static_cast<int>(op)];
  plan.armed = every > 0;
  plan.nth = 0;
  plan.every = every;
  plan.repeat = false;
  plan.calls = 0;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Plan& plan : plans_) {
    plan.armed = false;
    plan.nth = 0;
    plan.every = 0;
    plan.repeat = false;
    plan.calls = 0;
  }
}

Status FaultInjector::Check(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  Plan& plan = plans_[static_cast<int>(op)];
  ++plan.calls;
  if (!plan.armed) return Status::OK();
  bool fire = false;
  if (plan.every > 0) {
    fire = plan.calls % plan.every == 0;
  } else {
    fire = plan.repeat ? plan.calls >= plan.nth : plan.calls == plan.nth;
  }
  if (!fire) return Status::OK();
  ++plan.injected;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable(StrPrintf(
      "injected %s fault (call %lld)", FaultOpName(op),
      static_cast<long long>(plan.calls)));
}

std::int64_t FaultInjector::injected_failures(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_[static_cast<int>(op)].injected;
}

}  // namespace regcube
