#ifndef REGCUBE_IO_FAULT_INJECTOR_H_
#define REGCUBE_IO_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "regcube/common/status.h"

namespace regcube {

/// The I/O operation classes the frame store threads through the injector.
/// Every syscall the cold tier issues maps to exactly one of these, so a
/// test can fail "the 3rd write" or "every mmap" deterministically.
enum class FaultOp {
  kOpen = 0,   // open(2) of a spill segment or checkpoint file
  kWrite,      // pwrite(2) of a frame payload, header, or table
  kRead,       // a decode served from a mapped view
  kMmap,       // mmap(2) / remap after growth
  kRename,     // rename(2) of a compacted segment over its predecessor
};

/// Returns a stable name ("open", "write", ...) for `op`.
const char* FaultOpName(FaultOp op);

/// Deterministic fault-injection seam for the storage tier. The frame
/// store calls `Check(op)` immediately before each real syscall; an armed
/// injector makes the Nth (and optionally every following) matching call
/// fail with a typed `Unavailable` status instead of touching the disk.
///
/// Thread-safe: arming, checking and counter reads may race freely (the
/// store calls Check under its own mutex, tests arm from outside). The
/// injector never aborts and never corrupts — a failed Check simply means
/// the store must take its degraded path, which is exactly what the tests
/// then observe from the outside.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms the injector: the `nth` matching call (1-based) to Check(`op`)
  /// fails. With `repeat` true every call from the nth on fails — the
  /// "disk stays broken" shape; otherwise exactly one failure is injected
  /// and the disk "recovers".
  void FailNth(FaultOp op, std::int64_t nth, bool repeat = false);

  /// Arms the injector to fail every `every`-th matching call (every=1
  /// fails all of them). Overrides a previous FailNth for this op.
  void FailEvery(FaultOp op, std::int64_t every);

  /// Disarms every op and resets the per-op call counters. Injected
  /// failure totals survive (they are the test's evidence).
  void Reset();

  /// Called by the frame store before each real I/O. Returns OK when the
  /// op should proceed, or a typed Unavailable when the fault fires.
  Status Check(FaultOp op);

  /// Total failures injected across all ops since construction.
  std::int64_t injected_failures() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Failures injected for one op class.
  std::int64_t injected_failures(FaultOp op) const;

 private:
  struct Plan {
    bool armed = false;
    std::int64_t nth = 0;     // 1-based trigger point (FailNth)
    std::int64_t every = 0;   // modulus trigger (FailEvery); 0 = nth mode
    bool repeat = false;      // keep failing after the trigger
    std::int64_t calls = 0;   // matching Check calls seen
    std::int64_t injected = 0;
  };

  static constexpr int kNumOps = 5;

  mutable std::mutex mu_;
  Plan plans_[kNumOps];
  std::atomic<std::int64_t> injected_{0};
};

}  // namespace regcube

#endif  // REGCUBE_IO_FAULT_INJECTOR_H_
