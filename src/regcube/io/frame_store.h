#ifndef REGCUBE_IO_FRAME_STORE_H_
#define REGCUBE_IO_FRAME_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/cube/cell.h"
#include "regcube/io/fault_injector.h"
#include "regcube/time/tilt_frame.h"

namespace regcube {

/// Names one encoded tilt-frame block inside a FrameStore file: which
/// mapped file, where, and how many bytes. The RAM-resident half of a
/// spilled cell — the engine keeps the ref, the payload lives on disk.
struct BlockRef {
  std::int32_t file = -1;
  std::int64_t offset = 0;
  std::int64_t size = 0;

  bool valid() const { return file >= 0; }
};

/// Cold-tier observability (Engine::SpillStats folds this in). Counters
/// are cumulative since the store opened; live/garbage describe the files
/// right now. `fault_in_p99_us` is estimated from a power-of-two latency
/// histogram — resolution is one binary order of magnitude.
struct FrameStoreStats {
  std::int64_t spilled_blocks = 0;  // blocks ever appended
  std::int64_t spilled_bytes = 0;   // bytes ever appended
  std::int64_t live_blocks = 0;     // blocks currently referenced
  std::int64_t live_bytes = 0;
  std::int64_t garbage_bytes = 0;   // released blocks still occupying disk
  std::int64_t fault_ins = 0;       // ReadFrame calls (decoded fault-ins)
  std::int64_t fault_in_bytes = 0;
  double fault_in_p99_us = 0.0;
  std::int64_t disk_bytes = 0;      // total size of every store file
};

/// Online-compaction observability. A compaction rewrites one shard's
/// spill segment: live blocks are copied into a fresh file, the garbage
/// is dropped, and the new file is renamed over the old one atomically.
struct CompactionStats {
  std::int64_t compactions = 0;      // segments successfully rewritten
  std::int64_t compacted_bytes = 0;  // live bytes copied into new segments
  std::int64_t reclaimed_bytes = 0;  // garbage bytes dropped from disk
  std::int64_t failures = 0;         // attempts that failed (old file kept)
};

/// What a checkpoint directory's manifest records: enough to validate the
/// configuration at OpenFrom and to resume the stream where it stopped.
/// `num_dims`/`num_levels` guard against reopening under a different
/// schema or tilt structure; `clock` restores the global engine clock.
struct CheckpointManifest {
  std::int32_t num_shard_files = 0;
  std::int32_t num_dims = 0;
  std::int32_t num_levels = 0;
  TimeTick start_tick = 0;
  TimeTick clock = 0;
  std::int64_t num_cells = 0;
};

/// The mmap-backed cold tier for tilt-frame blocks — the file-resident
/// payload half of the memory-governed storage split (the RAM-resident
/// half is the engine's per-cell BlockRef index).
///
/// Two kinds of file live behind one ref space:
///  * spill segments ("spill-<shard>.rcs", append-only, one per shard,
///    created lazily in the spill directory) hold frames evicted by the
///    memory governor mid-run;
///  * checkpoint shard files ("frames-<i>.rcs", header + payload blocks +
///    cell table + footer) are attached read-only at OpenFrom, so a warm
///    restart serves its first queries straight from the mapped files.
///
/// Blocks are refcounted: AppendFrame hands back a ref the owning cell
/// holds; Release (on fault-in, or when a cell re-spills over a new block)
/// turns the bytes into garbage that the next checkpoint compacts away —
/// spill segments are never rewritten in place.
///
/// Every method is thread-safe behind one store mutex; decode happens
/// under it so a concurrent append's remap can never invalidate a view
/// mid-read. Payloads are the bit-exact "RGF1" tilt-frame encoding
/// (io/cube_io), so spill → fault-in is bitwise lossless.
class FrameStore {
 public:
  /// Opens a store rooted at `dir` (created if missing). An empty `dir`
  /// yields an attach-only store: checkpoint files can be mapped and read
  /// but AppendFrame is FailedPrecondition — the shape of an engine opened
  /// from a checkpoint with no spill directory configured.
  static Result<std::unique_ptr<FrameStore>> Open(const std::string& dir);

  ~FrameStore();

  FrameStore(const FrameStore&) = delete;
  FrameStore& operator=(const FrameStore&) = delete;

  /// Encodes `state` and appends it to `shard`'s spill segment. The
  /// returned ref starts with one reference (the caller's cell).
  Result<BlockRef> AppendFrame(int shard, const TiltFrameState& state);

  /// Fault-in: decodes the block behind `ref` from the mapping. Typed
  /// errors on a stale/corrupt ref (InvalidArgument) or a truncated file
  /// (OutOfRange); counted into the fault-in stats.
  Result<TiltFrameState> ReadFrame(const BlockRef& ref);

  /// The raw encoded payload behind `ref` — checkpoint writing copies
  /// spilled cells without a decode/encode round trip. Not counted as a
  /// fault-in.
  Result<std::string> ReadRawBlock(const BlockRef& ref) const;

  /// Drops the cell's reference; the block's bytes become garbage.
  void Release(const BlockRef& ref);

  /// Installs the fault-injection seam. `injector` is not owned and must
  /// outlive the store (or be cleared with nullptr first). Every
  /// subsequent open/write/read/mmap/rename consults it before touching
  /// the disk.
  void set_fault_injector(FaultInjector* injector);

  /// One re-pointed block of a compacted segment: the engine must replace
  /// every held copy of `from` with `to` before releasing its shard lock.
  struct Relocation {
    BlockRef from;
    BlockRef to;
  };

  /// Rewrites `shard`'s spill segment without its garbage: live blocks
  /// are copied into "<segment>.tmp", the tmp file is renamed over the
  /// original, and the old mapping is retired (stale refs keep failing
  /// typed, never alias the new file). Returns the relocation map the
  /// caller applies to its BlockRefs under the same lock that guards its
  /// reads. An empty vector means there was nothing to compact. On
  /// failure the old segment is untouched — callers keep their refs and
  /// the disk simply stays fat until a later attempt succeeds.
  ///
  /// Lock-free readers are safe by construction: a shard's *published*
  /// generation holds materialized frame blocks, never BlockRefs, so
  /// re-pointing only ever touches the mutable per-cell spill state the
  /// shard mutex already guards — a concurrent publish-pointer gather
  /// cannot observe a ref into a retired segment.
  Result<std::vector<Relocation>> CompactShardSegment(int shard);

  /// True when `shard`'s segment holds at least `min_bytes` of garbage
  /// and garbage >= `garbage_ratio` x live bytes — the governor's
  /// compaction trigger probe (the same garbage/live ratio the disk-bound
  /// acceptance check measures).
  bool ShouldCompact(int shard, double garbage_ratio,
                     std::int64_t min_bytes) const;

  CompactionStats Compactions() const;

  /// One restored cell of an attached checkpoint file.
  struct CheckpointEntry {
    CellKey key;
    BlockRef ref;
  };

  /// Maps a "frames-<i>.rcs" checkpoint file read-only into this store's
  /// ref space and returns its cell table (each entry holding one
  /// reference). Validates structure up front — header and footer magics,
  /// table bounds, every block range and its payload magic — so a corrupt
  /// or truncated file fails here with a typed error, not mid-query.
  Result<std::vector<CheckpointEntry>> AttachCheckpointFile(
      const std::string& path);

  FrameStoreStats Stats() const;

  /// Total bytes across every store file (spill segments + attached
  /// checkpoint files) — the MemoryReport "spill.disk_bytes" figure.
  std::int64_t DiskBytes() const;

 private:
  explicit FrameStore(std::string dir) : dir_(std::move(dir)) {}

  struct BlockMeta {
    std::int32_t count = 0;  // references held by cells
    std::int64_t size = 0;   // payload bytes (compaction re-reads these)
  };

  struct MappedFile {
    std::string path;
    int fd = -1;
    bool writable = false;
    bool retired = false;         // replaced by a compacted successor
    std::int64_t file_size = 0;   // bytes written / on disk
    void* map = nullptr;          // nullptr until first read
    std::size_t map_size = 0;     // bytes currently mapped
    std::unordered_map<std::int64_t, BlockMeta> refs;  // offset -> meta
    std::int64_t live_bytes = 0;
    std::int64_t garbage_bytes = 0;
  };

  /// Ensures `shard` has a spill segment, creating "spill-<shard>.rcs"
  /// with the store header on first use. Returns its file id.
  Result<std::int32_t> SegmentForLocked(int shard);

  /// Ensures file `id`'s mapping covers `[0, need)` bytes, remapping if
  /// the file grew past the current view.
  Status EnsureMappedLocked(std::int32_t id, std::int64_t need);

  /// Bounds-checks `ref` against its file and returns a view of the
  /// payload bytes through the mapping. View is valid only under mu_.
  Result<std::string_view> ViewLocked(const BlockRef& ref);

  void RecordFaultInLocked(std::int64_t ns);
  double FaultInP99Locked() const;

  /// Consults the installed injector (if any) before a real I/O.
  Status CheckFaultLocked(FaultOp op) const;

  const std::string dir_;

  mutable std::mutex mu_;
  FaultInjector* injector_ = nullptr;
  std::vector<MappedFile> files_;
  std::unordered_map<int, std::int32_t> segment_of_shard_;
  CompactionStats compaction_;
  std::int64_t spilled_blocks_ = 0;
  std::int64_t spilled_bytes_ = 0;
  std::int64_t fault_ins_ = 0;
  std::int64_t fault_in_bytes_ = 0;
  // Power-of-two fault-in latency histogram: bucket i counts reads that
  // took [2^(i-1), 2^i) ns (bucket 0: < 1 ns).
  static constexpr int kLatencyBuckets = 40;
  std::int64_t latency_ns_buckets_[kLatencyBuckets] = {};
  std::int64_t latency_samples_ = 0;
};

/// Builds the bytes of one checkpoint shard file: "RCS1" header, the
/// cells' encoded frame payloads back to back, the cell table, and a
/// fixed-size footer pointing at the table. Written atomically with
/// WriteFile; AttachCheckpointFile is the reader.
std::string EncodeCheckpointShardFile(
    int shard, const std::vector<std::pair<CellKey, std::string>>& cells);

/// Manifest codec ("RCM1") — the commit point of a checkpoint directory:
/// written last, so a directory with a valid manifest has complete shard
/// files. Decode validates magic/version and returns typed errors.
std::string EncodeCheckpointManifest(const CheckpointManifest& manifest);
Result<CheckpointManifest> DecodeCheckpointManifest(std::string_view data);

/// Canonical file names inside a checkpoint directory.
std::string CheckpointManifestPath(const std::string& dir);
std::string CheckpointShardFilePath(const std::string& dir, int shard);

/// mkdir -p: creates `dir` (and parents) if missing — the checkpoint
/// writer's first step.
Status EnsureDirectory(const std::string& dir);

}  // namespace regcube

#endif  // REGCUBE_IO_FRAME_STORE_H_
