#ifndef REGCUBE_IO_BINARY_IO_H_
#define REGCUBE_IO_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "regcube/common/status.h"

namespace regcube {

/// Appends fixed-width little-endian primitives to an in-memory buffer.
/// All regcube on-disk formats are built from these primitives, then
/// written atomically with WriteFile (checkpoints must never be torn).
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(std::uint8_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteDouble(double v);
  /// Length-prefixed (u32) byte string.
  void WriteString(std::string_view s);
  /// Raw bytes, no length prefix — for concatenating pre-encoded blocks
  /// whose sizes live in a table elsewhere (the frame-store format).
  void WriteRaw(std::string_view s);

  /// Bytes written so far — the offset the next WriteRaw lands at.
  std::size_t size() const { return buffer_.size(); }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Reads the primitives back; every read is bounds-checked and returns
/// OutOfRange on truncation rather than reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  /// Raw view of the next `n` bytes (no length prefix); the view borrows
  /// the reader's underlying buffer.
  Result<std::string_view> ReadRaw(std::size_t n);

  /// Jumps to an absolute offset (the footer-directed seeks of the
  /// frame-store format). OutOfRange past the end.
  Status SeekTo(std::size_t offset);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status Need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes `data` to `path` via a temporary file + rename (atomic on POSIX).
Status WriteFile(const std::string& path, std::string_view data);

/// Reads the whole file.
Result<std::string> ReadFile(const std::string& path);

}  // namespace regcube

#endif  // REGCUBE_IO_BINARY_IO_H_
