#ifndef REGCUBE_IO_CUBE_IO_H_
#define REGCUBE_IO_CUBE_IO_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "regcube/common/status.h"
#include "regcube/core/regression_cube.h"
#include "regcube/htree/htree.h"
#include "regcube/io/binary_io.h"
#include "regcube/time/tilt_frame.h"

namespace regcube {

/// Binary encodings for the library's persistent artifacts (the paper's
/// abstract: minimize "the amount of data to be retained in memory or
/// stored on disks"). All formats are little-endian, versioned by a magic
/// word, and decode with full validation — truncated or mismatched input
/// yields a Status, never UB.
///
/// Encoded artifacts:
///  * m-layer tuple sets  — a computed analysis window (4 numbers/cell);
///  * regression cubes    — both critical layers + exception cells;
///  * tilt-frame states   — per-cell stream checkpoints (restart recovery).

/// m-layer tuples ("RGT1").
std::string EncodeMLayerTuples(const std::vector<MLayerTuple>& tuples);
Result<std::vector<MLayerTuple>> DecodeMLayerTuples(std::string_view data);

/// Materialized cube ("RGC1"). The schema is not serialized; the caller
/// supplies it at decode time and the dimension count is validated.
std::string EncodeRegressionCube(const RegressionCube& cube);
Result<RegressionCube> DecodeRegressionCube(
    std::shared_ptr<const CubeSchema> schema, std::string_view data);

/// Tilt-frame checkpoint ("RGF1").
std::string EncodeTiltFrameState(const TiltFrameState& state);
Result<TiltFrameState> DecodeTiltFrameState(std::string_view data);

/// The leading magic word of an encoded tilt-frame state — the cheap
/// per-block integrity probe the frame store runs when attaching a
/// checkpoint file.
std::uint32_t TiltFrameStateMagic();

/// Cell-key codec shared by the tuple/cube formats and the frame store's
/// checkpoint tables (u8 dimension count + u32 per value; decode rejects
/// counts above kMaxDims).
void EncodeCellKey(ByteWriter* w, const CellKey& key);
Result<CellKey> DecodeCellKey(ByteReader* r);

}  // namespace regcube

#endif  // REGCUBE_IO_CUBE_IO_H_
