#include "regcube/io/frame_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/io/binary_io.h"
#include "regcube/io/cube_io.h"

namespace regcube {
namespace {

constexpr std::uint32_t kStoreMagic = 0x31534352;  // "RCS1" shard/segment file
constexpr std::uint32_t kTableMagic = 0x31544352;  // "RCT1" footer
constexpr std::uint32_t kManifestMagic = 0x314D4352;  // "RCM1"
constexpr std::uint32_t kFormatVersion = 1;

// header: magic u32 + version u32 + shard u32 + reserved u32.
constexpr std::int64_t kFileHeaderBytes = 16;
// footer: table_offset u64 + cell count u64 + table magic u32.
constexpr std::int64_t kFooterBytes = 20;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FileHeader(int shard) {
  ByteWriter w;
  w.WriteU32(kStoreMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<std::uint32_t>(shard));
  w.WriteU32(0);  // reserved
  return w.Release();
}

/// mkdir -p for the spill directory (checkpoint directories are created
/// by the checkpoint writer the same way).
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    prefix.assign(dir, 0, i == dir.size() ? i : i + 1);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(
          StrPrintf("cannot create directory %s", prefix.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FrameStore>> FrameStore::Open(const std::string& dir) {
  if (!dir.empty()) {
    RC_RETURN_IF_ERROR(MakeDirs(dir));
  }
  return std::unique_ptr<FrameStore>(new FrameStore(dir));
}

FrameStore::~FrameStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (MappedFile& f : files_) {
    if (f.map != nullptr) ::munmap(f.map, f.map_size);
    if (f.fd >= 0) ::close(f.fd);
    // Spill segments are scratch state of one engine run: meaningless
    // after the owning engine is gone, so remove them. Attached
    // checkpoint files belong to their directory and are left alone.
    if (f.writable) ::unlink(f.path.c_str());
  }
  files_.clear();
}

Result<std::int32_t> FrameStore::SegmentForLocked(int shard) {
  auto it = segment_of_shard_.find(shard);
  if (it != segment_of_shard_.end()) return it->second;
  if (dir_.empty()) {
    return Status::FailedPrecondition(
        "frame store has no spill directory configured "
        "(EngineBuilder::SetSpillDir)");
  }
  MappedFile f;
  f.path = StrPrintf("%s/spill-%d.rcs", dir_.c_str(), shard);
  // O_TRUNC: a segment left by a previous run holds refs nobody remembers.
  f.fd = ::open(f.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (f.fd < 0) {
    return Status::Internal(
        StrPrintf("cannot open spill segment %s", f.path.c_str()));
  }
  f.writable = true;
  const std::string header = FileHeader(shard);
  if (::pwrite(f.fd, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    ::close(f.fd);
    return Status::Internal(
        StrPrintf("cannot write header to %s", f.path.c_str()));
  }
  f.file_size = static_cast<std::int64_t>(header.size());
  const auto id = static_cast<std::int32_t>(files_.size());
  files_.push_back(std::move(f));
  segment_of_shard_[shard] = id;
  return id;
}

Status FrameStore::EnsureMappedLocked(std::int32_t id, std::int64_t need) {
  MappedFile& f = files_[static_cast<std::size_t>(id)];
  if (f.map != nullptr && static_cast<std::int64_t>(f.map_size) >= need) {
    return Status::OK();
  }
  if (f.map != nullptr) {
    ::munmap(f.map, f.map_size);
    f.map = nullptr;
    f.map_size = 0;
  }
  const auto size = static_cast<std::size_t>(f.file_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, f.fd, 0);
  if (map == MAP_FAILED) {
    return Status::Internal(StrPrintf("mmap of %s (%lld bytes) failed",
                                      f.path.c_str(),
                                      static_cast<long long>(f.file_size)));
  }
  f.map = map;
  f.map_size = size;
  return Status::OK();
}

Result<std::string_view> FrameStore::ViewLocked(const BlockRef& ref) {
  if (ref.file < 0 || ref.file >= static_cast<std::int32_t>(files_.size())) {
    return Status::InvalidArgument(
        StrPrintf("block ref names unknown store file %d", ref.file));
  }
  MappedFile& f = files_[static_cast<std::size_t>(ref.file)];
  if (ref.offset < kFileHeaderBytes || ref.size <= 0 ||
      ref.offset + ref.size > f.file_size) {
    return Status::InvalidArgument(StrPrintf(
        "block ref [%lld, +%lld) outside %s (%lld bytes)",
        static_cast<long long>(ref.offset), static_cast<long long>(ref.size),
        f.path.c_str(), static_cast<long long>(f.file_size)));
  }
  // A released ref is stale even though its bytes still sit in the
  // append-only file: reading through it is a caller bug, surfaced as a
  // typed error rather than silently serving dead data.
  if (f.refs.find(ref.offset) == f.refs.end()) {
    return Status::InvalidArgument(StrPrintf(
        "block ref [%lld, +%lld) in %s was released",
        static_cast<long long>(ref.offset), static_cast<long long>(ref.size),
        f.path.c_str()));
  }
  RC_RETURN_IF_ERROR(EnsureMappedLocked(ref.file, ref.offset + ref.size));
  return std::string_view(static_cast<const char*>(f.map) + ref.offset,
                          static_cast<std::size_t>(ref.size));
}

Result<BlockRef> FrameStore::AppendFrame(int shard,
                                         const TiltFrameState& state) {
  const std::string payload = EncodeTiltFrameState(state);
  std::lock_guard<std::mutex> lock(mu_);
  RC_ASSIGN_OR_RETURN(std::int32_t id, SegmentForLocked(shard));
  MappedFile& f = files_[static_cast<std::size_t>(id)];
  const std::int64_t offset = f.file_size;
  if (::pwrite(f.fd, payload.data(), payload.size(),
               static_cast<off_t>(offset)) !=
      static_cast<ssize_t>(payload.size())) {
    return Status::Internal(
        StrPrintf("short write to spill segment %s", f.path.c_str()));
  }
  const auto size = static_cast<std::int64_t>(payload.size());
  f.file_size += size;
  f.refs[offset] = 1;
  f.live_bytes += size;
  spilled_blocks_ += 1;
  spilled_bytes_ += size;
  return BlockRef{id, offset, size};
}

Result<TiltFrameState> FrameStore::ReadFrame(const BlockRef& ref) {
  const std::int64_t start_ns = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  RC_ASSIGN_OR_RETURN(std::string_view payload, ViewLocked(ref));
  // Decode under the mutex: a concurrent append's remap must never pull
  // the mapping out from under this view.
  auto state = DecodeTiltFrameState(payload);
  if (!state.ok()) return state.status();
  fault_ins_ += 1;
  fault_in_bytes_ += ref.size;
  RecordFaultInLocked(NowNs() - start_ns);
  return state;
}

Result<std::string> FrameStore::ReadRawBlock(const BlockRef& ref) const {
  auto* self = const_cast<FrameStore*>(this);
  std::lock_guard<std::mutex> lock(mu_);
  RC_ASSIGN_OR_RETURN(std::string_view payload, self->ViewLocked(ref));
  return std::string(payload);
}

void FrameStore::Release(const BlockRef& ref) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ref.file < 0 || ref.file >= static_cast<std::int32_t>(files_.size())) {
    return;
  }
  MappedFile& f = files_[static_cast<std::size_t>(ref.file)];
  auto it = f.refs.find(ref.offset);
  if (it == f.refs.end()) return;
  if (--it->second > 0) return;
  f.refs.erase(it);
  f.live_bytes -= ref.size;
  f.garbage_bytes += ref.size;
}

Result<std::vector<FrameStore::CheckpointEntry>>
FrameStore::AttachCheckpointFile(const std::string& path) {
  // Parse via a plain read first; the mmap view is installed only after
  // the structure validates, so a corrupt file never enters the ref space.
  RC_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  ByteReader r(data);
  RC_ASSIGN_OR_RETURN(std::uint32_t magic, r.ReadU32());
  if (magic != kStoreMagic) {
    return Status::InvalidArgument(
        StrPrintf("%s: bad frame-store magic 0x%08x", path.c_str(), magic));
  }
  RC_ASSIGN_OR_RETURN(std::uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrPrintf("%s: unsupported frame-store version %u", path.c_str(),
                  version));
  }
  if (data.size() < static_cast<std::size_t>(kFileHeaderBytes + kFooterBytes)) {
    return Status::OutOfRange(
        StrPrintf("%s: truncated below header + footer", path.c_str()));
  }
  RC_RETURN_IF_ERROR(r.SeekTo(data.size() - kFooterBytes));
  RC_ASSIGN_OR_RETURN(std::uint64_t table_offset, r.ReadU64());
  RC_ASSIGN_OR_RETURN(std::uint64_t cell_count, r.ReadU64());
  RC_ASSIGN_OR_RETURN(std::uint32_t table_magic, r.ReadU32());
  if (table_magic != kTableMagic) {
    return Status::InvalidArgument(
        StrPrintf("%s: bad table magic 0x%08x (truncated checkpoint?)",
                  path.c_str(), table_magic));
  }
  if (table_offset < static_cast<std::uint64_t>(kFileHeaderBytes) ||
      table_offset > data.size() - kFooterBytes) {
    return Status::OutOfRange(StrPrintf(
        "%s: table offset %llu outside file", path.c_str(),
        static_cast<unsigned long long>(table_offset)));
  }
  RC_RETURN_IF_ERROR(r.SeekTo(table_offset));

  std::vector<CheckpointEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(cell_count, data.size() / 16)));
  const auto frame_magic = TiltFrameStateMagic();
  for (std::uint64_t i = 0; i < cell_count; ++i) {
    CheckpointEntry e;
    RC_ASSIGN_OR_RETURN(e.key, DecodeCellKey(&r));
    RC_ASSIGN_OR_RETURN(std::uint64_t offset, r.ReadU64());
    RC_ASSIGN_OR_RETURN(std::uint64_t size, r.ReadU64());
    if (offset < static_cast<std::uint64_t>(kFileHeaderBytes) || size < 4 ||
        offset + size > table_offset) {
      return Status::OutOfRange(StrPrintf(
          "%s: cell %llu block [%llu, +%llu) outside payload region",
          path.c_str(), static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(size)));
    }
    // Cheap per-block integrity probe: every payload must lead with the
    // tilt-frame magic. Full decode is deferred to fault-in.
    ByteReader block(std::string_view(data).substr(offset, size));
    RC_ASSIGN_OR_RETURN(std::uint32_t lead, block.ReadU32());
    if (lead != frame_magic) {
      return Status::InvalidArgument(StrPrintf(
          "%s: cell %llu payload at %llu is not a tilt-frame block",
          path.c_str(), static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(offset)));
    }
    e.ref.offset = static_cast<std::int64_t>(offset);
    e.ref.size = static_cast<std::int64_t>(size);
    entries.push_back(std::move(e));
  }

  // Structure is sound: install the file read-only in the ref space.
  MappedFile f;
  f.path = path;
  f.fd = ::open(path.c_str(), O_RDONLY);
  if (f.fd < 0) {
    return Status::Internal(StrPrintf("cannot reopen %s", path.c_str()));
  }
  f.writable = false;
  f.file_size = static_cast<std::int64_t>(data.size());
  std::lock_guard<std::mutex> lock(mu_);
  const auto id = static_cast<std::int32_t>(files_.size());
  for (CheckpointEntry& e : entries) {
    e.ref.file = id;
    f.refs[e.ref.offset] = 1;
    f.live_bytes += e.ref.size;
  }
  files_.push_back(std::move(f));
  return entries;
}

FrameStoreStats FrameStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FrameStoreStats stats;
  stats.spilled_blocks = spilled_blocks_;
  stats.spilled_bytes = spilled_bytes_;
  stats.fault_ins = fault_ins_;
  stats.fault_in_bytes = fault_in_bytes_;
  stats.fault_in_p99_us = FaultInP99Locked();
  for (const MappedFile& f : files_) {
    stats.live_blocks += static_cast<std::int64_t>(f.refs.size());
    stats.live_bytes += f.live_bytes;
    stats.garbage_bytes += f.garbage_bytes;
    stats.disk_bytes += f.file_size;
  }
  return stats;
}

std::int64_t FrameStore::DiskBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t bytes = 0;
  for (const MappedFile& f : files_) bytes += f.file_size;
  return bytes;
}

void FrameStore::RecordFaultInLocked(std::int64_t ns) {
  int bucket = 0;
  for (std::int64_t v = ns; v > 0 && bucket < kLatencyBuckets - 1; v >>= 1) {
    ++bucket;
  }
  ++latency_ns_buckets_[bucket];
  ++latency_samples_;
}

double FrameStore::FaultInP99Locked() const {
  if (latency_samples_ == 0) return 0.0;
  const std::int64_t target = (latency_samples_ * 99 + 99) / 100;
  std::int64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += latency_ns_buckets_[i];
    if (seen >= target) {
      return static_cast<double>(1ll << std::min(i, 62)) / 1000.0;
    }
  }
  return 0.0;
}

std::string EncodeCheckpointShardFile(
    int shard, const std::vector<std::pair<CellKey, std::string>>& cells) {
  ByteWriter w;
  w.WriteRaw(FileHeader(shard));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  spans.reserve(cells.size());
  for (const auto& [key, payload] : cells) {
    spans.emplace_back(w.size(), payload.size());
    w.WriteRaw(payload);
  }
  const std::uint64_t table_offset = w.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EncodeCellKey(&w, cells[i].first);
    w.WriteU64(spans[i].first);
    w.WriteU64(spans[i].second);
  }
  w.WriteU64(table_offset);
  w.WriteU64(static_cast<std::uint64_t>(cells.size()));
  w.WriteU32(kTableMagic);
  return w.Release();
}

std::string EncodeCheckpointManifest(const CheckpointManifest& manifest) {
  ByteWriter w;
  w.WriteU32(kManifestMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_shard_files));
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_dims));
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_levels));
  w.WriteI64(manifest.start_tick);
  w.WriteI64(manifest.clock);
  w.WriteI64(manifest.num_cells);
  return w.Release();
}

Result<CheckpointManifest> DecodeCheckpointManifest(std::string_view data) {
  ByteReader r(data);
  RC_ASSIGN_OR_RETURN(std::uint32_t magic, r.ReadU32());
  if (magic != kManifestMagic) {
    return Status::InvalidArgument(
        StrPrintf("bad checkpoint manifest magic 0x%08x", magic));
  }
  RC_ASSIGN_OR_RETURN(std::uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrPrintf("unsupported checkpoint manifest version %u", version));
  }
  CheckpointManifest m;
  RC_ASSIGN_OR_RETURN(std::uint32_t shards, r.ReadU32());
  RC_ASSIGN_OR_RETURN(std::uint32_t dims, r.ReadU32());
  RC_ASSIGN_OR_RETURN(std::uint32_t levels, r.ReadU32());
  m.num_shard_files = static_cast<std::int32_t>(shards);
  m.num_dims = static_cast<std::int32_t>(dims);
  m.num_levels = static_cast<std::int32_t>(levels);
  RC_ASSIGN_OR_RETURN(m.start_tick, r.ReadI64());
  RC_ASSIGN_OR_RETURN(m.clock, r.ReadI64());
  RC_ASSIGN_OR_RETURN(m.num_cells, r.ReadI64());
  return m;
}

std::string CheckpointManifestPath(const std::string& dir) {
  return dir + "/MANIFEST.rcm";
}

std::string CheckpointShardFilePath(const std::string& dir, int shard) {
  return StrPrintf("%s/frames-%d.rcs", dir.c_str(), shard);
}

Status EnsureDirectory(const std::string& dir) { return MakeDirs(dir); }

}  // namespace regcube
