#include "regcube/io/frame_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "regcube/common/logging.h"
#include "regcube/common/str.h"
#include "regcube/io/binary_io.h"
#include "regcube/io/cube_io.h"

namespace regcube {
namespace {

constexpr std::uint32_t kStoreMagic = 0x31534352;  // "RCS1" shard/segment file
constexpr std::uint32_t kTableMagic = 0x31544352;  // "RCT1" footer
constexpr std::uint32_t kManifestMagic = 0x314D4352;  // "RCM1"
// Version 2 added a per-block FNV-1a checksum to the checkpoint cell
// table, so a torn write inside a payload fails at attach instead of
// decoding differently.
constexpr std::uint32_t kFormatVersion = 2;

// header: magic u32 + version u32 + shard u32 + reserved u32.
constexpr std::int64_t kFileHeaderBytes = 16;
// footer: table_offset u64 + cell count u64 + table magic u32.
constexpr std::int64_t kFooterBytes = 20;

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FileHeader(int shard) {
  ByteWriter w;
  w.WriteU32(kStoreMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<std::uint32_t>(shard));
  w.WriteU32(0);  // reserved
  return w.Release();
}

/// mkdir -p for the spill directory (checkpoint directories are created
/// by the checkpoint writer the same way).
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    prefix.assign(dir, 0, i == dir.size() ? i : i + 1);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(
          StrPrintf("cannot create directory %s", prefix.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FrameStore>> FrameStore::Open(const std::string& dir) {
  if (!dir.empty()) {
    RC_RETURN_IF_ERROR(MakeDirs(dir));
  }
  return std::unique_ptr<FrameStore>(new FrameStore(dir));
}

FrameStore::~FrameStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (MappedFile& f : files_) {
    if (f.map != nullptr) ::munmap(f.map, f.map_size);
    if (f.fd >= 0) ::close(f.fd);
    // Spill segments are scratch state of one engine run: meaningless
    // after the owning engine is gone, so remove them. Attached
    // checkpoint files belong to their directory and are left alone.
    if (f.writable) ::unlink(f.path.c_str());
  }
  files_.clear();
}

Status FrameStore::CheckFaultLocked(FaultOp op) const {
  return injector_ == nullptr ? Status::OK() : injector_->Check(op);
}

void FrameStore::set_fault_injector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

Result<std::int32_t> FrameStore::SegmentForLocked(int shard) {
  auto it = segment_of_shard_.find(shard);
  if (it != segment_of_shard_.end()) return it->second;
  if (dir_.empty()) {
    return Status::FailedPrecondition(
        "frame store has no spill directory configured "
        "(EngineBuilder::SetSpillDir)");
  }
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kOpen));
  MappedFile f;
  f.path = StrPrintf("%s/spill-%d.rcs", dir_.c_str(), shard);
  // O_TRUNC: a segment left by a previous run holds refs nobody remembers.
  f.fd = ::open(f.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (f.fd < 0) {
    return Status::Internal(
        StrPrintf("cannot open spill segment %s", f.path.c_str()));
  }
  f.writable = true;
  const std::string header = FileHeader(shard);
  Status fault = CheckFaultLocked(FaultOp::kWrite);
  if (!fault.ok() ||
      ::pwrite(f.fd, header.data(), header.size(), 0) !=
          static_cast<ssize_t>(header.size())) {
    ::close(f.fd);
    if (!fault.ok()) return fault;
    return Status::Internal(
        StrPrintf("cannot write header to %s", f.path.c_str()));
  }
  f.file_size = static_cast<std::int64_t>(header.size());
  const auto id = static_cast<std::int32_t>(files_.size());
  files_.push_back(std::move(f));
  segment_of_shard_[shard] = id;
  return id;
}

Status FrameStore::EnsureMappedLocked(std::int32_t id, std::int64_t need) {
  MappedFile& f = files_[static_cast<std::size_t>(id)];
  if (f.map != nullptr && static_cast<std::int64_t>(f.map_size) >= need) {
    return Status::OK();
  }
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kMmap));
  if (f.map != nullptr) {
    ::munmap(f.map, f.map_size);
    f.map = nullptr;
    f.map_size = 0;
  }
  const auto size = static_cast<std::size_t>(f.file_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, f.fd, 0);
  if (map == MAP_FAILED) {
    return Status::Internal(StrPrintf("mmap of %s (%lld bytes) failed",
                                      f.path.c_str(),
                                      static_cast<long long>(f.file_size)));
  }
  f.map = map;
  f.map_size = size;
  return Status::OK();
}

Result<std::string_view> FrameStore::ViewLocked(const BlockRef& ref) {
  if (ref.file < 0 || ref.file >= static_cast<std::int32_t>(files_.size())) {
    return Status::InvalidArgument(
        StrPrintf("block ref names unknown store file %d", ref.file));
  }
  MappedFile& f = files_[static_cast<std::size_t>(ref.file)];
  if (f.retired) {
    return Status::InvalidArgument(StrPrintf(
        "block ref [%lld, +%lld) names a compacted-away segment",
        static_cast<long long>(ref.offset),
        static_cast<long long>(ref.size)));
  }
  if (ref.offset < kFileHeaderBytes || ref.size <= 0 ||
      ref.offset + ref.size > f.file_size) {
    return Status::InvalidArgument(StrPrintf(
        "block ref [%lld, +%lld) outside %s (%lld bytes)",
        static_cast<long long>(ref.offset), static_cast<long long>(ref.size),
        f.path.c_str(), static_cast<long long>(f.file_size)));
  }
  // A released ref is stale even though its bytes still sit in the
  // append-only file: reading through it is a caller bug, surfaced as a
  // typed error rather than silently serving dead data.
  if (f.refs.find(ref.offset) == f.refs.end()) {
    return Status::InvalidArgument(StrPrintf(
        "block ref [%lld, +%lld) in %s was released",
        static_cast<long long>(ref.offset), static_cast<long long>(ref.size),
        f.path.c_str()));
  }
  RC_RETURN_IF_ERROR(EnsureMappedLocked(ref.file, ref.offset + ref.size));
  return std::string_view(static_cast<const char*>(f.map) + ref.offset,
                          static_cast<std::size_t>(ref.size));
}

Result<BlockRef> FrameStore::AppendFrame(int shard,
                                         const TiltFrameState& state) {
  const std::string payload = EncodeTiltFrameState(state);
  std::lock_guard<std::mutex> lock(mu_);
  RC_ASSIGN_OR_RETURN(std::int32_t id, SegmentForLocked(shard));
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kWrite));
  MappedFile& f = files_[static_cast<std::size_t>(id)];
  const std::int64_t offset = f.file_size;
  if (::pwrite(f.fd, payload.data(), payload.size(),
               static_cast<off_t>(offset)) !=
      static_cast<ssize_t>(payload.size())) {
    return Status::Unavailable(
        StrPrintf("short write to spill segment %s", f.path.c_str()));
  }
  const auto size = static_cast<std::int64_t>(payload.size());
  f.file_size += size;
  f.refs[offset] = BlockMeta{1, size};
  f.live_bytes += size;
  spilled_blocks_ += 1;
  spilled_bytes_ += size;
  return BlockRef{id, offset, size};
}

Result<TiltFrameState> FrameStore::ReadFrame(const BlockRef& ref) {
  const std::int64_t start_ns = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kRead));
  RC_ASSIGN_OR_RETURN(std::string_view payload, ViewLocked(ref));
  // Decode under the mutex: a concurrent append's remap must never pull
  // the mapping out from under this view.
  auto state = DecodeTiltFrameState(payload);
  if (!state.ok()) return state.status();
  fault_ins_ += 1;
  fault_in_bytes_ += ref.size;
  RecordFaultInLocked(NowNs() - start_ns);
  return state;
}

Result<std::string> FrameStore::ReadRawBlock(const BlockRef& ref) const {
  auto* self = const_cast<FrameStore*>(this);
  std::lock_guard<std::mutex> lock(mu_);
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kRead));
  RC_ASSIGN_OR_RETURN(std::string_view payload, self->ViewLocked(ref));
  return std::string(payload);
}

void FrameStore::Release(const BlockRef& ref) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ref.file < 0 || ref.file >= static_cast<std::int32_t>(files_.size())) {
    return;
  }
  MappedFile& f = files_[static_cast<std::size_t>(ref.file)];
  if (f.retired) return;
  auto it = f.refs.find(ref.offset);
  if (it == f.refs.end()) return;
  if (--it->second.count > 0) return;
  const std::int64_t size = it->second.size;
  f.refs.erase(it);
  f.live_bytes -= size;
  f.garbage_bytes += size;
}

Result<std::vector<FrameStore::Relocation>> FrameStore::CompactShardSegment(
    int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto seg = segment_of_shard_.find(shard);
  if (seg == segment_of_shard_.end()) return std::vector<Relocation>{};
  const std::int32_t old_id = seg->second;
  {
    const MappedFile& old_f = files_[static_cast<std::size_t>(old_id)];
    if (old_f.garbage_bytes == 0) return std::vector<Relocation>{};
  }

  // Every step below that fails leaves the old segment exactly as it was:
  // the tmp file is unlinked, the refs keep pointing at the fat segment,
  // and the caller sees a typed error it can count and retry later.
  auto fail = [this](int fd, const std::string& tmp, Status status) {
    if (fd >= 0) ::close(fd);
    if (!tmp.empty()) ::unlink(tmp.c_str());
    ++compaction_.failures;
    return status;
  };

  Status fault = CheckFaultLocked(FaultOp::kOpen);
  if (!fault.ok()) return fail(-1, "", std::move(fault));
  const std::string tmp_path =
      files_[static_cast<std::size_t>(old_id)].path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return fail(-1, "", Status::Unavailable(StrPrintf(
                            "cannot open %s", tmp_path.c_str())));
  }

  // The copy reads live payloads through the old mapping.
  Status mapped = EnsureMappedLocked(
      old_id, files_[static_cast<std::size_t>(old_id)].file_size);
  if (!mapped.ok()) return fail(fd, tmp_path, std::move(mapped));

  const std::string header = FileHeader(shard);
  fault = CheckFaultLocked(FaultOp::kWrite);
  if (!fault.ok()) return fail(fd, tmp_path, std::move(fault));
  if (::pwrite(fd, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    return fail(fd, tmp_path, Status::Unavailable(StrPrintf(
                                  "short write to %s", tmp_path.c_str())));
  }

  MappedFile& old_f = files_[static_cast<std::size_t>(old_id)];
  std::vector<std::pair<std::int64_t, BlockMeta>> live(old_f.refs.begin(),
                                                       old_f.refs.end());
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // The successor's id is known before it is installed: the push_back at
  // the end happens under this same lock.
  const auto new_id = static_cast<std::int32_t>(files_.size());
  std::int64_t new_size = static_cast<std::int64_t>(header.size());
  std::int64_t copied = 0;
  std::vector<Relocation> relocations;
  relocations.reserve(live.size());
  std::unordered_map<std::int64_t, BlockMeta> new_refs;
  new_refs.reserve(live.size());
  for (const auto& [offset, meta] : live) {
    fault = CheckFaultLocked(FaultOp::kWrite);
    if (!fault.ok()) return fail(fd, tmp_path, std::move(fault));
    const char* src = static_cast<const char*>(old_f.map) + offset;
    if (::pwrite(fd, src, static_cast<std::size_t>(meta.size),
                 static_cast<off_t>(new_size)) !=
        static_cast<ssize_t>(meta.size)) {
      return fail(fd, tmp_path, Status::Unavailable(StrPrintf(
                                    "short write to %s", tmp_path.c_str())));
    }
    relocations.push_back(Relocation{BlockRef{old_id, offset, meta.size},
                                     BlockRef{new_id, new_size, meta.size}});
    new_refs[new_size] = meta;
    new_size += meta.size;
    copied += meta.size;
  }

  fault = CheckFaultLocked(FaultOp::kRename);
  if (!fault.ok()) return fail(fd, tmp_path, std::move(fault));
  if (::rename(tmp_path.c_str(), old_f.path.c_str()) != 0) {
    return fail(fd, tmp_path, Status::Unavailable(StrPrintf(
                                  "cannot rename %s over %s",
                                  tmp_path.c_str(), old_f.path.c_str())));
  }

  MappedFile nf;
  nf.path = old_f.path;
  nf.fd = fd;
  nf.writable = true;
  nf.file_size = new_size;
  nf.refs = std::move(new_refs);
  nf.live_bytes = copied;

  // Retire the old slot in place: its fd and mapping are gone, its refs
  // are cleared, and any stale BlockRef that still names it keeps failing
  // typed (slots are never reused). The path now belongs to the
  // successor, so the retired record must not unlink it at destruction.
  compaction_.reclaimed_bytes += old_f.garbage_bytes;
  compaction_.compacted_bytes += copied;
  ++compaction_.compactions;
  if (old_f.map != nullptr) ::munmap(old_f.map, old_f.map_size);
  if (old_f.fd >= 0) ::close(old_f.fd);
  old_f.map = nullptr;
  old_f.map_size = 0;
  old_f.fd = -1;
  old_f.retired = true;
  old_f.writable = false;
  old_f.path.clear();
  old_f.refs.clear();
  old_f.live_bytes = 0;
  old_f.garbage_bytes = 0;
  old_f.file_size = 0;

  files_.push_back(std::move(nf));
  segment_of_shard_[shard] = new_id;
  return relocations;
}

bool FrameStore::ShouldCompact(int shard, double garbage_ratio,
                               std::int64_t min_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto seg = segment_of_shard_.find(shard);
  if (seg == segment_of_shard_.end()) return false;
  const MappedFile& f = files_[static_cast<std::size_t>(seg->second)];
  if (f.garbage_bytes < min_bytes) return false;
  return static_cast<double>(f.garbage_bytes) >=
         garbage_ratio * static_cast<double>(std::max<std::int64_t>(
                             f.live_bytes, 1));
}

CompactionStats FrameStore::Compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compaction_;
}

Result<std::vector<FrameStore::CheckpointEntry>>
FrameStore::AttachCheckpointFile(const std::string& path) {
  // Parse via a plain read first; the mmap view is installed only after
  // the structure validates, so a corrupt file never enters the ref space.
  RC_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  ByteReader r(data);
  RC_ASSIGN_OR_RETURN(std::uint32_t magic, r.ReadU32());
  if (magic != kStoreMagic) {
    return Status::InvalidArgument(
        StrPrintf("%s: bad frame-store magic 0x%08x", path.c_str(), magic));
  }
  RC_ASSIGN_OR_RETURN(std::uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrPrintf("%s: unsupported frame-store version %u", path.c_str(),
                  version));
  }
  if (data.size() < static_cast<std::size_t>(kFileHeaderBytes + kFooterBytes)) {
    return Status::OutOfRange(
        StrPrintf("%s: truncated below header + footer", path.c_str()));
  }
  RC_RETURN_IF_ERROR(r.SeekTo(data.size() - kFooterBytes));
  RC_ASSIGN_OR_RETURN(std::uint64_t table_offset, r.ReadU64());
  RC_ASSIGN_OR_RETURN(std::uint64_t cell_count, r.ReadU64());
  RC_ASSIGN_OR_RETURN(std::uint32_t table_magic, r.ReadU32());
  if (table_magic != kTableMagic) {
    return Status::InvalidArgument(
        StrPrintf("%s: bad table magic 0x%08x (truncated checkpoint?)",
                  path.c_str(), table_magic));
  }
  if (table_offset < static_cast<std::uint64_t>(kFileHeaderBytes) ||
      table_offset > data.size() - kFooterBytes) {
    return Status::OutOfRange(StrPrintf(
        "%s: table offset %llu outside file", path.c_str(),
        static_cast<unsigned long long>(table_offset)));
  }
  RC_RETURN_IF_ERROR(r.SeekTo(table_offset));

  std::vector<CheckpointEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(cell_count, data.size() / 16)));
  const auto frame_magic = TiltFrameStateMagic();
  for (std::uint64_t i = 0; i < cell_count; ++i) {
    CheckpointEntry e;
    RC_ASSIGN_OR_RETURN(e.key, DecodeCellKey(&r));
    RC_ASSIGN_OR_RETURN(std::uint64_t offset, r.ReadU64());
    RC_ASSIGN_OR_RETURN(std::uint64_t size, r.ReadU64());
    RC_ASSIGN_OR_RETURN(std::uint64_t checksum, r.ReadU64());
    if (offset < static_cast<std::uint64_t>(kFileHeaderBytes) || size < 4 ||
        offset + size > table_offset) {
      return Status::OutOfRange(StrPrintf(
          "%s: cell %llu block [%llu, +%llu) outside payload region",
          path.c_str(), static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(size)));
    }
    // Cheap per-block integrity probe: every payload must lead with the
    // tilt-frame magic. Full decode is deferred to fault-in.
    const std::string_view payload = std::string_view(data).substr(offset,
                                                                   size);
    ByteReader block(payload);
    RC_ASSIGN_OR_RETURN(std::uint32_t lead, block.ReadU32());
    if (lead != frame_magic) {
      return Status::InvalidArgument(StrPrintf(
          "%s: cell %llu payload at %llu is not a tilt-frame block",
          path.c_str(), static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(offset)));
    }
    // The checksum catches what the magic cannot: a torn write anywhere
    // inside the payload would otherwise decode into different numbers
    // silently.
    if (Fnv1a64(payload) != checksum) {
      return Status::InvalidArgument(StrPrintf(
          "%s: cell %llu payload at %llu fails its checksum (torn write?)",
          path.c_str(), static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(offset)));
    }
    e.ref.offset = static_cast<std::int64_t>(offset);
    e.ref.size = static_cast<std::int64_t>(size);
    entries.push_back(std::move(e));
  }

  // Structure is sound: install the file read-only in the ref space.
  MappedFile f;
  f.path = path;
  std::lock_guard<std::mutex> lock(mu_);
  RC_RETURN_IF_ERROR(CheckFaultLocked(FaultOp::kOpen));
  f.fd = ::open(path.c_str(), O_RDONLY);
  if (f.fd < 0) {
    return Status::Unavailable(StrPrintf("cannot reopen %s", path.c_str()));
  }
  f.writable = false;
  f.file_size = static_cast<std::int64_t>(data.size());
  const auto id = static_cast<std::int32_t>(files_.size());
  for (CheckpointEntry& e : entries) {
    e.ref.file = id;
    f.refs[e.ref.offset] = BlockMeta{1, e.ref.size};
    f.live_bytes += e.ref.size;
  }
  files_.push_back(std::move(f));
  return entries;
}

FrameStoreStats FrameStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FrameStoreStats stats;
  stats.spilled_blocks = spilled_blocks_;
  stats.spilled_bytes = spilled_bytes_;
  stats.fault_ins = fault_ins_;
  stats.fault_in_bytes = fault_in_bytes_;
  stats.fault_in_p99_us = FaultInP99Locked();
  for (const MappedFile& f : files_) {
    stats.live_blocks += static_cast<std::int64_t>(f.refs.size());
    stats.live_bytes += f.live_bytes;
    stats.garbage_bytes += f.garbage_bytes;
    stats.disk_bytes += f.file_size;
  }
  return stats;
}

std::int64_t FrameStore::DiskBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t bytes = 0;
  for (const MappedFile& f : files_) bytes += f.file_size;
  return bytes;
}

void FrameStore::RecordFaultInLocked(std::int64_t ns) {
  int bucket = 0;
  for (std::int64_t v = ns; v > 0 && bucket < kLatencyBuckets - 1; v >>= 1) {
    ++bucket;
  }
  ++latency_ns_buckets_[bucket];
  ++latency_samples_;
}

double FrameStore::FaultInP99Locked() const {
  if (latency_samples_ == 0) return 0.0;
  const std::int64_t target = (latency_samples_ * 99 + 99) / 100;
  std::int64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += latency_ns_buckets_[i];
    if (seen >= target) {
      return static_cast<double>(1ll << std::min(i, 62)) / 1000.0;
    }
  }
  return 0.0;
}

std::string EncodeCheckpointShardFile(
    int shard, const std::vector<std::pair<CellKey, std::string>>& cells) {
  ByteWriter w;
  w.WriteRaw(FileHeader(shard));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  spans.reserve(cells.size());
  for (const auto& [key, payload] : cells) {
    spans.emplace_back(w.size(), payload.size());
    w.WriteRaw(payload);
  }
  const std::uint64_t table_offset = w.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EncodeCellKey(&w, cells[i].first);
    w.WriteU64(spans[i].first);
    w.WriteU64(spans[i].second);
    w.WriteU64(Fnv1a64(cells[i].second));
  }
  w.WriteU64(table_offset);
  w.WriteU64(static_cast<std::uint64_t>(cells.size()));
  w.WriteU32(kTableMagic);
  return w.Release();
}

std::string EncodeCheckpointManifest(const CheckpointManifest& manifest) {
  ByteWriter w;
  w.WriteU32(kManifestMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_shard_files));
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_dims));
  w.WriteU32(static_cast<std::uint32_t>(manifest.num_levels));
  w.WriteI64(manifest.start_tick);
  w.WriteI64(manifest.clock);
  w.WriteI64(manifest.num_cells);
  return w.Release();
}

Result<CheckpointManifest> DecodeCheckpointManifest(std::string_view data) {
  ByteReader r(data);
  RC_ASSIGN_OR_RETURN(std::uint32_t magic, r.ReadU32());
  if (magic != kManifestMagic) {
    return Status::InvalidArgument(
        StrPrintf("bad checkpoint manifest magic 0x%08x", magic));
  }
  RC_ASSIGN_OR_RETURN(std::uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrPrintf("unsupported checkpoint manifest version %u", version));
  }
  CheckpointManifest m;
  RC_ASSIGN_OR_RETURN(std::uint32_t shards, r.ReadU32());
  RC_ASSIGN_OR_RETURN(std::uint32_t dims, r.ReadU32());
  RC_ASSIGN_OR_RETURN(std::uint32_t levels, r.ReadU32());
  m.num_shard_files = static_cast<std::int32_t>(shards);
  m.num_dims = static_cast<std::int32_t>(dims);
  m.num_levels = static_cast<std::int32_t>(levels);
  RC_ASSIGN_OR_RETURN(m.start_tick, r.ReadI64());
  RC_ASSIGN_OR_RETURN(m.clock, r.ReadI64());
  RC_ASSIGN_OR_RETURN(m.num_cells, r.ReadI64());
  return m;
}

std::string CheckpointManifestPath(const std::string& dir) {
  return dir + "/MANIFEST.rcm";
}

std::string CheckpointShardFilePath(const std::string& dir, int shard) {
  return StrPrintf("%s/frames-%d.rcs", dir.c_str(), shard);
}

Status EnsureDirectory(const std::string& dir) { return MakeDirs(dir); }

}  // namespace regcube
